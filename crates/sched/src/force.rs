//! Latency-constrained force-directed scheduling (Paulin & Knight) —
//! incremental, index-dense kernel.
//!
//! Given a latency, force-directed scheduling chooses a control step for
//! every operation so that operations of the same class are spread as evenly
//! as possible over the steps, which minimises the number of execution units
//! the final allocation needs.  This is the behaviour the paper relies on
//! from HYPER's scheduler ("targeting minimum hardware resources for the
//! desired throughput", step 11 of the algorithm).
//!
//! # Kernel design
//!
//! The reference implementation (`crate::naive`, compiled for tests and
//! under the `reference` feature) rebuilds the whole
//! distribution graph on a `BTreeMap<(OpClass, u32), f64>` and rescans every
//! unfixed (node, step) pair on every iteration, with frame propagation run
//! to a whole-graph fixed point over allocating adjacency accessors — an
//! O(n²·L·W) map churn.  This kernel produces *equal schedules* (pinned by
//! the schedule-identity property tests) from dense, incrementally
//! maintained state:
//!
//! * **Frames and fixedness** live in flat arrays indexed by
//!   [`NodeId::index`]; adjacency comes from the CDFG's cached CSR view
//!   ([`cdfg::Slices`]), so the hot loop performs no allocation and no map
//!   lookups.
//! * **Distribution graph rows** are one `Vec<f64>` per operation class.  A
//!   row is recomputed only when some member's frame changed, and the cells
//!   are summed in ascending-node order — exactly the order the reference's
//!   map construction uses — so the f64 values (and therefore every force
//!   comparison) are bit-identical to the reference.
//! * **Per-node best candidates** (step, self-force) are cached and
//!   recomputed only for nodes whose frame or class row actually changed;
//!   the global pick merges the cached candidates in ascending node order
//!   with the reference's ε-tolerant comparator.  (The ε tie-break is not
//!   transitive, so a segmented reduction could in principle diverge from
//!   the reference's flat scan — but only if two *distinct* force values
//!   fell within (ε, 2ε] of each other, which the rational structure of
//!   forces on real circuits never produces; the schedule-identity
//!   property tests pin the equality across every circuit family.)
//! * **Propagation** is a worklist relaxation seeded from the just-fixed
//!   node instead of a whole-graph fixed point.  The earliest- and
//!   latest-step constraint systems are independent longest-path closures,
//!   so seeded relaxation reaches the same unique fixed point.
//!
//! The invariant tying it together: after every iteration, each class row
//! equals the column sums of its members' occupation probabilities, and each
//! cached candidate equals the reference's scan result for the node's
//! current frame and row.

use std::collections::{BTreeMap, VecDeque};

use cdfg::{Cdfg, NodeId, OpClass, Slices};

use crate::error::ScheduleError;
use crate::schedule::Schedule;
use crate::timing::Timing;

/// Comparison slack for self-forces: differences at or below this are ties,
/// broken towards the smaller (node, step) pair.
const EPS: f64 = 1e-9;

/// Number of functional operation classes (the DG row count).
const NUM_CLASSES: usize = OpClass::FUNCTIONAL.len();

/// Mutable time frame `[earliest, latest]` of an operation during
/// force-directed scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    earliest: u32,
    latest: u32,
}

impl Frame {
    fn width(self) -> u32 {
        self.latest - self.earliest + 1
    }

    fn probability(self, step: u32) -> f64 {
        if step >= self.earliest && step <= self.latest {
            1.0 / f64::from(self.width())
        } else {
            0.0
        }
    }
}

/// Reusable buffers for force-directed scheduling runs — the warm-start
/// entry point the full-range Pareto explorer drives.
///
/// One workspace can be reused across any sequence of circuits and
/// latencies: every buffer (the ASAP/ALAP analysis included) is resized and
/// reinitialised per run, so a warm run performs no allocation once the
/// buffers have grown to the largest graph seen, and the produced schedules
/// are **bit-identical** to cold runs — reuse changes where the f64s live,
/// never how they are computed (the warm-start identity tests pin this
/// against `sched::naive`).
#[derive(Debug, Default)]
pub struct Workspace {
    /// ASAP/ALAP analysis reused across runs (also lent to the `hyper`
    /// entry points so feasibility checks share the same buffers).
    pub(crate) timing: Timing,
    /// Current time frame of each functional node.
    frames: Vec<Frame>,
    /// Whether the node's step has been fixed (its frame is then width 1).
    fixed: Vec<bool>,
    fixed_count: usize,
    /// Dense class id of each functional node.
    class_of: Vec<u8>,
    /// Members of each class, ascending node id (the DG summation order).
    class_members: [Vec<NodeId>; NUM_CLASSES],
    /// One distribution-graph row per class, indexed by control step.
    dg: [Vec<f64>; NUM_CLASSES],
    /// Classes whose row must be recomputed before the next pick.
    class_dirty: [bool; NUM_CLASSES],
    /// Cached best (step, self-force) per unfixed node.
    cand: Vec<(u32, f64)>,
    cand_valid: Vec<bool>,
    /// Nodes whose frame changed since the last pick (deduplicated).
    changed: Vec<NodeId>,
    changed_flag: Vec<bool>,
    /// Worklist scratch for seeded propagation.
    queue: VecDeque<NodeId>,
    /// Frame updates performed by the most recent kernel run (each node a
    /// fix or a propagation step actually moved, counted once per
    /// iteration).  Instrumentation for [`RepairStats`]; never consulted by
    /// the kernel itself.
    touched: usize,
    /// Distribution-graph rows rebuilt by the most recent kernel run
    /// (rows of classes with at least one member).
    rebuilt: usize,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }
}

/// Schedules `cdfg` within `latency` control steps, minimising the peak
/// number of simultaneously busy execution units per class.
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyTooSmall`] if the latency is below the
/// critical path (taking control edges into account).
pub fn schedule(cdfg: &Cdfg, latency: u32) -> Result<Schedule, ScheduleError> {
    let mut ws = Workspace::new();
    schedule_with_workspace(cdfg, latency, &mut ws)
}

/// Like [`schedule`], but warm-started: timing analysis and kernel state
/// reuse the buffers of `ws`.  Intended for walking a circuit across a
/// whole budget range (the Pareto explorer's inner loop); results are
/// bit-identical to [`schedule`].
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyTooSmall`] if the latency is below the
/// critical path (taking control edges into account).
pub fn schedule_with_workspace(
    cdfg: &Cdfg,
    latency: u32,
    ws: &mut Workspace,
) -> Result<Schedule, ScheduleError> {
    let mut timing = std::mem::take(&mut ws.timing);
    timing.compute_into(cdfg, latency);
    let result = if timing.is_feasible() {
        schedule_with_timing_into(cdfg, &timing, ws)
    } else {
        Err(ScheduleError::LatencyTooSmall {
            requested: latency,
            critical_path: timing.min_latency(),
        })
    };
    ws.timing = timing;
    result
}

/// Runs the kernel against a timing analysis the caller already computed
/// for this `cdfg` and latency (the analysis must be feasible), on
/// caller-owned buffers (`ws.timing` is not consulted).
pub(crate) fn schedule_with_timing_into(
    cdfg: &Cdfg,
    timing: &Timing,
    ws: &mut Workspace,
) -> Result<Schedule, ScheduleError> {
    Kernel::init(cdfg, timing, ws).run()
}

/// Mobile-node fraction above which [`repair`] falls back to a full
/// recompute (`CASCADE_NUM / CASCADE_DEN`).  When a budget delta leaves
/// most of the graph mobile, the cascade covers essentially the whole
/// circuit: there is no bounded re-work left to exploit, so the event is
/// accounted as a full recompute and the cached analysis is refreshed from
/// scratch.
const CASCADE_NUM: usize = 3;
/// See [`CASCADE_NUM`].
const CASCADE_DEN: usize = 4;

/// Per-event cost accounting for [`repair`]: how much of the graph one
/// incremental step actually re-derived.  The online engine and
/// `bench_online` aggregate these into the touched-nodes ratio against a
/// cold recompute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Nodes whose schedule-relevant state was re-derived: kernel frame
    /// updates (fixes and propagation steps, counted once per node per
    /// iteration), plus — on the full-recompute path only — one per
    /// functional node for the timing analysis itself.  Memo hits and the
    /// O(1) infeasibility fast path touch zero nodes.
    pub nodes_touched: usize,
    /// Distribution-graph rows the kernel rebuilt.
    pub classes_rebuilt: usize,
    /// Whether this event fell back to a cold recompute (first sight of the
    /// circuit, or a cascade past the `CASCADE_NUM` threshold).
    pub full_recompute: bool,
}

/// Warm per-circuit state for the online repair path: the kernel
/// [`Workspace`] plus the latency-independent invariants that let a budget
/// event skip the timing analysis, and a schedule memo over budgets already
/// visited.
///
/// A workspace binds itself to the first circuit it sees (keyed by name and
/// slot count, the same identity the engine's caches use) and rebinds —
/// dropping every cache — when handed a different one.  The caches:
///
/// * `asap` is latency-independent, and `alap(n) = latency − height(n)`
///   where `height` is the latency-independent longest functional path
///   towards the outputs, so a pure budget change rebuilds the timing
///   analysis as a uniform shift (`Timing::rebuild_from_heights`) — the
///   closed form of `Timing::tighten`'s endpoint re-propagation for this
///   delta class.
/// * `critical_path` makes infeasibility O(1), surfacing the *same* typed
///   [`ScheduleError::LatencyTooSmall`] a cold run produces.
/// * `memo` holds one schedule per budget already visited; event streams
///   walk small budget windows, so revisits dominate and repair to zero
///   touched nodes.  The map is bounded by the number of distinct feasible
///   budgets the stream visits.
///
/// Every path produces schedules **bit-identical** to a cold
/// [`schedule`] at the same parameters: the warm path runs the identical
/// kernel on an identical (rebuilt) analysis, memo entries were produced by
/// that same kernel, and the fallback *is* a cold run on warm buffers.
#[derive(Debug, Default)]
pub struct RepairWorkspace {
    ws: Workspace,
    /// Name of the bound circuit (`None` until first use).
    circuit: Option<String>,
    /// Slot count of the bound circuit, guarding against name reuse across
    /// structurally different graphs.
    slots: usize,
    /// Cached ASAP values (latency-independent).
    asap: Vec<u32>,
    /// Cached sink heights: `alap(n) = latency − height(n)`.
    height: Vec<u32>,
    /// Cached critical path (max ASAP, control edges included).
    critical_path: u32,
    /// Functional node count of the bound circuit.
    functional: usize,
    /// Schedules already produced, by budget.
    memo: BTreeMap<u32, Schedule>,
}

impl RepairWorkspace {
    /// An empty workspace; binds to the first circuit [`repair`] sees.
    pub fn new() -> Self {
        RepairWorkspace::default()
    }

    /// The bound circuit's critical path, once bound.
    pub fn critical_path(&self) -> Option<u32> {
        self.circuit.as_ref().map(|_| self.critical_path)
    }

    /// The name of the bound circuit, if any.
    pub fn bound_circuit(&self) -> Option<&str> {
        self.circuit.as_deref()
    }

    /// Drops every cache; the next [`repair`] call performs a full
    /// recompute and rebinds.
    pub fn reset(&mut self) {
        self.circuit = None;
        self.memo.clear();
    }

    /// Harvests the latency-independent invariants from a just-computed
    /// feasible analysis.
    fn cache_invariants(&mut self, cdfg: &Cdfg, timing: &Timing) {
        let slices = cdfg.slices();
        let latency = timing.latency();
        let slots = slices.slot_count();
        self.asap.clear();
        self.asap.resize(slots, 0);
        self.height.clear();
        self.height.resize(slots, 0);
        for &n in slices.functional() {
            self.asap[n.index()] = timing.asap(n);
            self.height[n.index()] = latency - timing.alap(n);
        }
        self.critical_path = timing.min_latency();
        self.functional = slices.functional().len();
    }
}

/// Repairs the schedule of `cdfg` for a (possibly) new `latency`, reusing
/// everything `rw` learned from previous events on the same circuit.  The
/// returned schedule (or error) is bit-identical to a cold
/// [`schedule`]`(cdfg, latency)`; the [`RepairStats`] say how much work the
/// event actually cost (see [`RepairWorkspace`] for the fast paths).
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyTooSmall`] — with the same fields a cold
/// run reports — if the latency is below the circuit's critical path.
pub fn repair(
    cdfg: &Cdfg,
    latency: u32,
    rw: &mut RepairWorkspace,
) -> (Result<Schedule, ScheduleError>, RepairStats) {
    let slices = cdfg.slices();
    let bound = rw.circuit.as_deref() == Some(cdfg.name()) && rw.slots == slices.slot_count();
    if !bound {
        rw.circuit = Some(cdfg.name().to_owned());
        rw.slots = slices.slot_count();
        rw.memo.clear();
        return repair_full(cdfg, latency, rw);
    }

    // O(1) infeasibility: `min_latency()` equals the cached critical path
    // at every latency, so the typed error is cold-identical.
    if latency < rw.critical_path {
        return (
            Err(ScheduleError::LatencyTooSmall {
                requested: latency,
                critical_path: rw.critical_path,
            }),
            RepairStats::default(),
        );
    }

    // Revisited budget: the memo entry was produced by the identical
    // kernel, so replaying it is a zero-work repair.
    if let Some(found) = rw.memo.get(&latency) {
        return (Ok(found.clone()), RepairStats::default());
    }

    // Cascade check: when the new budget leaves most nodes mobile, the
    // delta has degenerated to a whole-graph reschedule.
    let mobile = slices
        .functional()
        .iter()
        .filter(|n| latency - rw.height[n.index()] > rw.asap[n.index()])
        .count();
    if mobile * CASCADE_DEN > rw.functional * CASCADE_NUM {
        return repair_full(cdfg, latency, rw);
    }

    // Warm path: rebuild the analysis from the cached invariants (no
    // per-node re-derivation) and run the kernel, which fixes every
    // width-1 frame up front and only works the mobile cascade.
    let mut timing = std::mem::take(&mut rw.ws.timing);
    timing.rebuild_from_heights(latency, &rw.asap, &rw.height);
    let result = schedule_with_timing_into(cdfg, &timing, &mut rw.ws);
    rw.ws.timing = timing;
    let stats = RepairStats {
        nodes_touched: rw.ws.touched,
        classes_rebuilt: rw.ws.rebuilt,
        full_recompute: false,
    };
    if let Ok(found) = &result {
        rw.memo.insert(latency, found.clone());
    }
    (result, stats)
}

/// The full-recompute path of [`repair`]: a cold timing analysis plus a
/// kernel run on warm buffers, refreshing the cached invariants on the way.
/// Bit-identical to [`schedule_with_workspace`] by construction.
fn repair_full(
    cdfg: &Cdfg,
    latency: u32,
    rw: &mut RepairWorkspace,
) -> (Result<Schedule, ScheduleError>, RepairStats) {
    let mut timing = std::mem::take(&mut rw.ws.timing);
    timing.compute_into(cdfg, latency);
    let result = if timing.is_feasible() {
        rw.cache_invariants(cdfg, &timing);
        schedule_with_timing_into(cdfg, &timing, &mut rw.ws)
    } else {
        let critical_path = timing.min_latency();
        // Future events need the invariants of a *feasible* analysis;
        // harvest them at the critical path itself.
        timing.compute_into(cdfg, critical_path.max(1));
        rw.cache_invariants(cdfg, &timing);
        rw.ws.touched = 0;
        rw.ws.rebuilt = 0;
        Err(ScheduleError::LatencyTooSmall { requested: latency, critical_path })
    };
    rw.ws.timing = timing;
    let stats = RepairStats {
        nodes_touched: rw.functional + rw.ws.touched,
        classes_rebuilt: rw.ws.rebuilt,
        full_recompute: true,
    };
    if let Ok(found) = &result {
        rw.memo.insert(latency, found.clone());
    }
    (result, stats)
}

/// One force-directed scheduling run over workspace-owned mutable state,
/// slot-indexed by [`NodeId::index`].
struct Kernel<'a> {
    slices: &'a Slices,
    latency: u32,
    ws: &'a mut Workspace,
}

impl<'a> Kernel<'a> {
    /// Resets `ws` for a run over `cdfg` at `timing`'s latency and binds the
    /// kernel to it.  Every buffer is cleared and resized, so stale state
    /// from a previous run (another circuit, another latency) cannot leak.
    fn init(cdfg: &'a Cdfg, timing: &Timing, ws: &'a mut Workspace) -> Self {
        let slices = cdfg.slices();
        let slots = slices.slot_count();
        let latency = timing.latency();

        ws.frames.clear();
        ws.frames.resize(slots, Frame { earliest: 0, latest: 0 });
        ws.fixed.clear();
        ws.fixed.resize(slots, false);
        ws.fixed_count = 0;
        ws.class_of.clear();
        ws.class_of.resize(slots, 0);
        for members in &mut ws.class_members {
            members.clear();
        }
        for row in &mut ws.dg {
            row.clear();
            row.resize(latency as usize + 1, 0.0);
        }
        ws.class_dirty = [true; NUM_CLASSES];
        ws.cand.clear();
        ws.cand.resize(slots, (0, 0.0));
        ws.cand_valid.clear();
        ws.cand_valid.resize(slots, false);
        ws.changed.clear();
        ws.changed_flag.clear();
        ws.changed_flag.resize(slots, false);
        ws.queue.clear();
        ws.touched = 0;
        ws.rebuilt = 0;

        for &n in slices.functional() {
            let data = cdfg.node(n).expect("live node");
            let i = n.index();
            let frame = Frame { earliest: timing.asap(n), latest: timing.alap(n) };
            ws.frames[i] = frame;
            if frame.width() == 1 {
                ws.fixed[i] = true;
                ws.fixed_count += 1;
            }
            let class = data.op.class().dense_index();
            ws.class_of[i] = class as u8;
            ws.class_members[class].push(n);
        }

        Kernel { slices, latency, ws }
    }

    fn run(mut self) -> Result<Schedule, ScheduleError> {
        let total = self.slices.functional().len();
        while self.ws.fixed_count < total {
            self.refresh_dirty_rows();
            let (node, step) = self.pick();
            let i = node.index();
            self.ws.fixed[i] = true;
            self.ws.fixed_count += 1;
            self.ws.frames[i] = Frame { earliest: step, latest: step };
            self.mark_changed(node);
            self.propagate_from(node)?;
            // Frame changes dirty the owning class's DG row and the node's
            // cached candidate.
            for k in 0..self.ws.changed.len() {
                let m = self.ws.changed[k];
                self.ws.class_dirty[self.ws.class_of[m.index()] as usize] = true;
                self.ws.cand_valid[m.index()] = false;
                self.ws.changed_flag[m.index()] = false;
            }
            self.ws.changed.clear();
        }

        let mut schedule = Schedule::new(self.latency);
        for &n in self.slices.functional() {
            schedule.assign(n, self.ws.frames[n.index()].earliest);
        }
        Ok(schedule)
    }

    /// Rebuilds the DG rows of dirty classes and drops the cached candidates
    /// of their unfixed members.  Cells are summed over members in ascending
    /// node order — the reference implementation's map-construction order —
    /// so the resulting f64 values are bit-identical to a full rebuild.
    fn refresh_dirty_rows(&mut self) {
        let ws = &mut *self.ws;
        for class in 0..NUM_CLASSES {
            if !ws.class_dirty[class] {
                continue;
            }
            ws.class_dirty[class] = false;
            if !ws.class_members[class].is_empty() {
                ws.rebuilt += 1;
            }
            let row = &mut ws.dg[class];
            row.fill(0.0);
            for &m in &ws.class_members[class] {
                let frame = ws.frames[m.index()];
                let p = frame.probability(frame.earliest);
                for step in frame.earliest..=frame.latest {
                    row[step as usize] += p;
                }
                if !ws.fixed[m.index()] {
                    ws.cand_valid[m.index()] = false;
                }
            }
        }
    }

    /// Picks the unfixed (node, step) pair with the smallest self-force,
    /// refreshing invalidated per-node candidates on the way.  Ties within
    /// [`EPS`] go to the smaller (node, step) pair, like the reference's
    /// flat scan (see the module docs for the ε-chain caveat).
    fn pick(&mut self) -> (NodeId, u32) {
        let mut best: Option<(NodeId, u32, f64)> = None;
        for &n in self.slices.functional() {
            let i = n.index();
            if self.ws.fixed[i] {
                continue;
            }
            if !self.ws.cand_valid[i] {
                let candidate = self.best_candidate(n);
                self.ws.cand[i] = candidate;
                self.ws.cand_valid[i] = true;
            }
            let (step, force) = self.ws.cand[i];
            let better = match best {
                None => true,
                Some((bn, bs, bf)) => {
                    force < bf - EPS || ((force - bf).abs() <= EPS && (n, step) < (bn, bs))
                }
            };
            if better {
                best = Some((n, step, force));
            }
        }
        let (node, step, _) = best.expect("at least one unfixed node");
        (node, step)
    }

    /// The node's best step by self-force, scanning its frame in ascending
    /// order with the reference comparator.
    fn best_candidate(&self, n: NodeId) -> (u32, f64) {
        let frame = self.ws.frames[n.index()];
        let row = &self.ws.dg[self.ws.class_of[n.index()] as usize];
        let mut best: Option<(u32, f64)> = None;
        for step in frame.earliest..=frame.latest {
            let force = self_force(row, frame, step);
            let better = match best {
                None => true,
                Some((_, bf)) => force < bf - EPS,
            };
            if better {
                best = Some((step, force));
            }
        }
        best.expect("frames are non-empty")
    }

    fn mark_changed(&mut self, n: NodeId) {
        if !self.ws.changed_flag[n.index()] {
            self.ws.changed_flag[n.index()] = true;
            self.ws.changed.push(n);
            self.ws.touched += 1;
        }
    }

    /// Restores frame consistency after `origin`'s frame tightened: a
    /// worklist relaxation of the earliest-step system along successors and
    /// the latest-step system along predecessors.  Both systems are
    /// longest-path closures whose only newly violated constraints leave
    /// `origin`, so seeding there reaches the same fixed point the
    /// reference's whole-graph iteration computes.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InfeasiblePropagation`] if a constraint
    /// pushes a frame's earliest step past its latest one — unreachable when
    /// fixing happens inside consistent frames, but surfaced rather than
    /// clamped away.
    fn propagate_from(&mut self, origin: NodeId) -> Result<(), ScheduleError> {
        // Forward: successors must start after their predecessors finish.
        self.ws.queue.push_back(origin);
        while let Some(n) = self.ws.queue.pop_front() {
            let bound = self.ws.frames[n.index()].earliest + 1;
            for &s in self.slices.succs(n) {
                if !self.slices.is_functional(s) {
                    continue;
                }
                let i = s.index();
                if bound > self.ws.frames[i].latest {
                    self.ws.queue.clear();
                    return Err(ScheduleError::InfeasiblePropagation { node: s });
                }
                if !self.ws.fixed[i] && bound > self.ws.frames[i].earliest {
                    self.ws.frames[i].earliest = bound;
                    self.mark_changed(s);
                    self.ws.queue.push_back(s);
                }
            }
        }
        // Backward: predecessors must finish before their successors start.
        self.ws.queue.push_back(origin);
        while let Some(n) = self.ws.queue.pop_front() {
            let bound = self.ws.frames[n.index()].latest.saturating_sub(1);
            for &p in self.slices.preds(n) {
                if !self.slices.is_functional(p) {
                    continue;
                }
                let i = p.index();
                if bound < self.ws.frames[i].earliest {
                    self.ws.queue.clear();
                    return Err(ScheduleError::InfeasiblePropagation { node: p });
                }
                if !self.ws.fixed[i] && bound < self.ws.frames[i].latest {
                    self.ws.frames[i].latest = bound;
                    self.mark_changed(p);
                    self.ws.queue.push_back(p);
                }
            }
        }
        Ok(())
    }
}

/// Self force of placing an operation with time frame `frame` at `step`,
/// against its class's DG row: the standard
/// `DG · (new probability − old probability)` sum over the frame, evaluated
/// term-by-term in ascending step order (the reference's summation order).
fn self_force(row: &[f64], frame: Frame, step: u32) -> f64 {
    let p = frame.probability(step);
    let mut force = 0.0;
    for s in frame.earliest..=frame.latest {
        let dg_s = row[s as usize];
        let delta = if s == step { 1.0 - p } else { -p };
        force += dg_s * delta;
    }
    force
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::resource::ResourceConstraint;
    use cdfg::Op;

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn three_steps_use_a_single_subtractor() {
        // Figure 2(a): with three control steps force-directed scheduling
        // spreads the two subtractions over different steps, so one
        // subtractor suffices.
        let (g, _gt, amb, bma, _m) = abs_diff();
        let s = schedule(&g, 3).unwrap();
        s.validate(&g).unwrap();
        assert_ne!(s.step_of(amb), s.step_of(bma));
        let usage = s.resource_usage(&g);
        assert_eq!(usage.count(OpClass::Sub), 1);
    }

    #[test]
    fn two_steps_need_two_subtractors() {
        // Figure 1: with only two control steps both subtractions land in
        // step 1 and two subtractors are required.
        let (g, ..) = abs_diff();
        let s = schedule(&g, 2).unwrap();
        s.validate(&g).unwrap();
        let usage = s.resource_usage(&g);
        assert_eq!(usage.count(OpClass::Sub), 2);
    }

    #[test]
    fn latency_below_critical_path_is_rejected() {
        let (g, ..) = abs_diff();
        let err = schedule(&g, 1).unwrap_err();
        assert!(matches!(err, ScheduleError::LatencyTooSmall { requested: 1, critical_path: 2 }));
    }

    #[test]
    fn control_edges_constrain_force_directed_scheduling() {
        let (mut g, gt, amb, bma, m) = abs_diff();
        g.add_control_edge(gt, amb).unwrap();
        g.add_control_edge(gt, bma).unwrap();
        let s = schedule(&g, 3).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.step_of(gt), Some(1));
        assert!(s.step_of(amb).unwrap() >= 2);
        assert!(s.step_of(bma).unwrap() >= 2);
        assert_eq!(s.step_of(m), Some(3));
    }

    #[test]
    fn balances_adders_over_steps() {
        // Four independent additions, two steps: force-directed scheduling
        // should put two in each step so that only two adders are needed.
        let mut g = Cdfg::new("adds");
        let mut sums = Vec::new();
        for i in 0..4 {
            let a = g.add_input(format!("a{i}"));
            let b = g.add_input(format!("b{i}"));
            sums.push(g.add_op(Op::Add, &[a, b]).unwrap());
        }
        // A final combining stage so the graph has depth 2 and outputs.
        let c1 = g.add_op(Op::Add, &[sums[0], sums[1]]).unwrap();
        let c2 = g.add_op(Op::Add, &[sums[2], sums[3]]).unwrap();
        g.add_output("o1", c1).unwrap();
        g.add_output("o2", c2).unwrap();

        let s = schedule(&g, 3).unwrap();
        s.validate(&g).unwrap();
        let usage = s.resource_usage(&g);
        assert!(
            usage.count(OpClass::Add) <= 3,
            "force-directed scheduling should avoid piling all six adds into two steps: {usage}"
        );
        // A valid schedule under the derived resource bound exists.
        let constraint = ResourceConstraint::Limited(usage);
        s.validate_with(&g, &constraint).unwrap();
    }

    #[test]
    fn schedule_is_deterministic() {
        let (g, ..) = abs_diff();
        let s1 = schedule(&g, 4).unwrap();
        let s2 = schedule(&g, 4).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn matches_the_naive_reference_on_hand_circuits() {
        let (g, ..) = abs_diff();
        for latency in 2..8 {
            assert_eq!(
                schedule(&g, latency).unwrap(),
                naive::schedule(&g, latency).unwrap(),
                "latency {latency}"
            );
        }

        let (mut h, gt, amb, bma, _) = abs_diff();
        h.add_control_edge(gt, amb).unwrap();
        h.add_control_edge(gt, bma).unwrap();
        for latency in 3..8 {
            assert_eq!(
                schedule(&h, latency).unwrap(),
                naive::schedule(&h, latency).unwrap(),
                "constrained, latency {latency}"
            );
        }
    }

    #[test]
    fn matches_the_naive_reference_on_a_wide_mixed_graph() {
        // A two-layer mixed-class graph with plenty of slack, so many
        // iterations of pick/propagate run with non-trivial frames.
        let mut g = Cdfg::new("mixed");
        let mut layer = Vec::new();
        for i in 0..6 {
            let a = g.add_input(format!("a{i}"));
            let b = g.add_input(format!("b{i}"));
            let op = match i % 3 {
                0 => Op::Add,
                1 => Op::Mul,
                _ => Op::Sub,
            };
            layer.push(g.add_op(op, &[a, b]).unwrap());
        }
        let mut acc = layer[0];
        for &n in &layer[1..] {
            acc = g.add_op(Op::Add, &[acc, n]).unwrap();
        }
        let sel = g.add_op(Op::Gt, &[layer[0], layer[1]]).unwrap();
        let m = g.add_mux(sel, acc, layer[2]).unwrap();
        g.add_output("o", m).unwrap();

        let cp = g.critical_path_length();
        for latency in cp..cp + 5 {
            assert_eq!(
                schedule(&g, latency).unwrap(),
                naive::schedule(&g, latency).unwrap(),
                "latency {latency}"
            );
        }
    }

    #[test]
    fn propagate_surfaces_infeasibility_instead_of_clamping() {
        // Regression for the backward-pass clamp: a deep chain whose tail is
        // fixed far too early must error, not silently floor the chain's
        // frames at step 1.
        let mut g = Cdfg::new("chain");
        let x = g.add_input("x");
        let a = g.add_op(Op::Neg, &[x]).unwrap();
        let b = g.add_op(Op::Neg, &[a]).unwrap();
        let c = g.add_op(Op::Neg, &[b]).unwrap();
        let d = g.add_op(Op::Neg, &[c]).unwrap();
        g.add_output("o", d).unwrap();

        let timing = Timing::compute(&g, 6);
        let mut ws = Workspace::new();
        let mut kernel = Kernel::init(&g, &timing, &mut ws);
        // Simulate a (buggy) late fix: d pinned to step 2 even though three
        // predecessors must run first.
        let i = d.index();
        kernel.ws.frames[i] = Frame { earliest: 2, latest: 2 };
        kernel.ws.fixed[i] = true;
        kernel.ws.fixed_count += 1;
        let err = kernel.propagate_from(d).unwrap_err();
        assert!(matches!(err, ScheduleError::InfeasiblePropagation { .. }));
        assert!(kernel.ws.queue.is_empty(), "worklist drained on error");
    }

    #[test]
    fn warm_workspace_runs_are_bit_identical_to_cold_runs() {
        // One workspace reused across circuits and latencies — including an
        // infeasible one in the middle — must reproduce every cold schedule
        // exactly and keep erroring where cold runs error.
        let (g, ..) = abs_diff();
        let (mut h, gt, amb, bma, _) = abs_diff();
        h.add_control_edge(gt, amb).unwrap();
        h.add_control_edge(gt, bma).unwrap();

        let mut ws = Workspace::new();
        for latency in 2..8 {
            assert_eq!(
                schedule_with_workspace(&g, latency, &mut ws).unwrap(),
                schedule(&g, latency).unwrap(),
                "unconstrained, latency {latency}"
            );
        }
        let err = schedule_with_workspace(&h, 2, &mut ws).unwrap_err();
        assert!(matches!(err, ScheduleError::LatencyTooSmall { requested: 2, critical_path: 3 }));
        for latency in 3..8 {
            assert_eq!(
                schedule_with_workspace(&h, latency, &mut ws).unwrap(),
                schedule(&h, latency).unwrap(),
                "constrained, latency {latency}"
            );
        }
    }

    #[test]
    fn repair_is_bit_identical_to_cold_schedules_across_budget_walks() {
        // A reflecting budget walk over one warm workspace: every repaired
        // schedule must equal a cold run, whichever internal path (full,
        // warm kernel, memo) served it.
        let (g, ..) = abs_diff();
        let mut rw = RepairWorkspace::new();
        let walk = [2u32, 3, 4, 3, 2, 5, 4, 4, 2, 7, 3];
        for (i, &latency) in walk.iter().enumerate() {
            let (got, stats) = repair(&g, latency, &mut rw);
            assert_eq!(got.unwrap(), schedule(&g, latency).unwrap(), "event {i} at {latency}");
            if i == 0 {
                assert!(stats.full_recompute, "first sight is a full recompute");
            }
        }
        assert_eq!(rw.critical_path(), Some(2));
        assert_eq!(rw.bound_circuit(), Some("abs_diff"));
    }

    #[test]
    fn repair_memo_hits_and_infeasible_fast_path_touch_zero_nodes() {
        let (g, ..) = abs_diff();
        let mut rw = RepairWorkspace::new();
        let (first, stats) = repair(&g, 3, &mut rw);
        let first = first.unwrap();
        assert!(stats.full_recompute);
        assert!(stats.nodes_touched > 0, "cold path re-derives the analysis");

        let (revisit, stats) = repair(&g, 3, &mut rw);
        assert_eq!(revisit.unwrap(), first);
        assert_eq!(stats, RepairStats::default(), "memo hit is zero work");

        let (err, stats) = repair(&g, 1, &mut rw);
        let cold_err = schedule(&g, 1).unwrap_err();
        assert_eq!(err.unwrap_err(), cold_err, "typed error matches cold");
        assert_eq!(stats, RepairStats::default(), "infeasibility check is O(1)");
    }

    #[test]
    fn repair_surfaces_cold_identical_errors_even_on_first_sight() {
        // The very first event on a circuit may already be infeasible; the
        // full path must report the same typed error as a cold run and
        // still leave the workspace usable for later feasible budgets.
        let (g, ..) = abs_diff();
        let mut rw = RepairWorkspace::new();
        let (err, stats) = repair(&g, 1, &mut rw);
        assert_eq!(err.unwrap_err(), schedule(&g, 1).unwrap_err());
        assert!(stats.full_recompute);
        let (ok, _) = repair(&g, 4, &mut rw);
        assert_eq!(ok.unwrap(), schedule(&g, 4).unwrap());
    }

    #[test]
    fn repair_rebinds_to_a_new_circuit_and_drops_stale_caches() {
        let (g, ..) = abs_diff();
        let mut h = Cdfg::new("chain");
        let x = h.add_input("x");
        let mut prev = h.add_op(Op::Neg, &[x]).unwrap();
        for _ in 0..3 {
            prev = h.add_op(Op::Neg, &[prev]).unwrap();
        }
        h.add_output("o", prev).unwrap();

        let mut rw = RepairWorkspace::new();
        assert_eq!(repair(&g, 3, &mut rw).0.unwrap(), schedule(&g, 3).unwrap());
        let (got, stats) = repair(&h, 5, &mut rw);
        assert_eq!(got.unwrap(), schedule(&h, 5).unwrap());
        assert!(stats.full_recompute, "rebinding recomputes from scratch");
        assert_eq!(rw.critical_path(), Some(4));
        // The old circuit rebinds again rather than replaying a stale memo.
        let (back, stats) = repair(&g, 3, &mut rw);
        assert_eq!(back.unwrap(), schedule(&g, 3).unwrap());
        assert!(stats.full_recompute);
        rw.reset();
        assert_eq!(rw.bound_circuit(), None);
        assert!(repair(&g, 3, &mut rw).1.full_recompute);
    }

    #[test]
    fn warm_repairs_touch_fewer_nodes_than_full_recomputes() {
        // Tightening back to the critical path pins every critical node's
        // frame at init, so the warm path re-derives strictly less than the
        // full path's per-node timing pass; loosening past the critical
        // path makes every node mobile, which is exactly the cascade the
        // threshold classifies as a full recompute.
        let (g, ..) = abs_diff();
        let mut rw = RepairWorkspace::new();
        let (_, full) = repair(&g, 3, &mut rw);
        assert!(full.full_recompute, "every node is mobile above the critical path");
        let (_, warm) = repair(&g, 2, &mut rw);
        assert!(!warm.full_recompute, "at the critical path the cascade is bounded");
        assert!(warm.nodes_touched < full.nodes_touched, "warm {warm:?} vs full {full:?}");
    }

    #[test]
    fn feasible_deep_chains_match_the_naive_reference() {
        // Chains are the worst case for seeded propagation (every fix
        // cascades end to end); the direct error-path test for the naive
        // reference lives in naive::tests.
        let mut g = Cdfg::new("chain");
        let x = g.add_input("x");
        let mut prev = g.add_op(Op::Neg, &[x]).unwrap();
        for _ in 0..4 {
            prev = g.add_op(Op::Neg, &[prev]).unwrap();
        }
        g.add_output("o", prev).unwrap();
        // Feasible latencies still schedule fine in both kernels.
        for latency in 5..9 {
            assert_eq!(schedule(&g, latency).unwrap(), naive::schedule(&g, latency).unwrap(),);
        }
    }
}
