//! Operation scheduling substrate for behavioral synthesis.
//!
//! This crate plays the role of the HYPER scheduler used by Monteiro et al.
//! (DAC 1996): given a [`cdfg::Cdfg`], a throughput constraint (number of
//! control steps) and optionally hardware resource constraints, it assigns
//! every functional operation to a control step.
//!
//! Provided pieces:
//!
//! * [`timing`] — ASAP / ALAP values and mobility (slack) for a given
//!   latency, the quantities manipulated by steps 4–8 of the paper's
//!   algorithm,
//! * [`resource`] — execution-unit kinds, allocations and constraints,
//! * [`schedule`] — the schedule type plus validation and resource-usage
//!   accounting,
//! * [`list`] — resource-constrained list scheduling,
//! * [`force`] — latency-constrained force-directed scheduling (minimises
//!   the number of execution units, like HYPER), as an incremental,
//!   allocation-free kernel over dense per-class distribution-graph rows,
//! * `naive` — the original map-based force-directed scheduler, compiled
//!   under `cfg(test)` or the `reference` feature as the behavioural
//!   reference the identity tests and benches compare against,
//! * [`hyper`] — the combined "HYPER-style" entry point used by the
//!   power-management flow after control edges have been inserted,
//! * [`dvs`] — the fine-grained DVS slack-distribution kernel: per-op
//!   discrete slow-down levels under a latency budget, with an exhaustive
//!   minimum-energy reference under `cfg(any(test, feature = "reference"))`.
//!
//! # Example
//!
//! ```
//! use cdfg::{Cdfg, Op};
//! use sched::hyper::{self, HyperOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Cdfg::new("abs_diff");
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let gt = g.add_op(Op::Gt, &[a, b])?;
//! let amb = g.add_op(Op::Sub, &[a, b])?;
//! let bma = g.add_op(Op::Sub, &[b, a])?;
//! let m = g.add_mux(gt, bma, amb)?;
//! g.add_output("abs", m)?;
//!
//! let schedule = hyper::schedule(&g, &HyperOptions::with_latency(3))?;
//! assert!(schedule.num_steps() <= 3);
//! schedule.validate(&g)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dvs;
pub mod error;
pub mod force;
pub mod hyper;
pub mod list;
#[cfg(any(test, feature = "reference"))]
pub mod naive;
pub mod resource;
pub mod schedule;
pub mod timing;

pub use crate::error::ScheduleError;
pub use crate::force::{repair, RepairStats, RepairWorkspace};
pub use crate::resource::{ResourceConstraint, ResourceSet};
pub use crate::schedule::Schedule;
pub use crate::timing::{Timing, TimingDelta};
