//! Property-based tests for the scheduling substrate.

use cdfg::{Cdfg, NodeId, Op, OpClass};
use proptest::prelude::*;
use sched::hyper::{self, HyperOptions};
use sched::{force, list, ResourceConstraint, Schedule, Timing};

/// Recipe for a random, always-valid CDFG (mirrors the cdfg crate's
/// property tests but kept local so the two crates can evolve separately).
#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, usize, usize, usize)>,
    extra_latency: u32,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (2usize..5, prop::collection::vec((0u8..6, 0usize..64, 0usize..64, 0usize..64), 1..30), 0u32..6)
        .prop_map(|(num_inputs, steps, extra_latency)| Recipe { num_inputs, steps, extra_latency })
}

fn build(recipe: &Recipe) -> Cdfg {
    let mut g = Cdfg::new("random");
    let mut values: Vec<NodeId> = Vec::new();
    for i in 0..recipe.num_inputs {
        values.push(g.add_input(format!("in{i}")));
    }
    for &(opcode, a, b, c) in &recipe.steps {
        let pick = |idx: usize| values[idx % values.len()];
        let node = match opcode {
            0 => g.add_op(Op::Add, &[pick(a), pick(b)]).unwrap(),
            1 => g.add_op(Op::Sub, &[pick(a), pick(b)]).unwrap(),
            2 => g.add_op(Op::Mul, &[pick(a), pick(b)]).unwrap(),
            3 => g.add_op(Op::Gt, &[pick(a), pick(b)]).unwrap(),
            4 => g.add_op(Op::Lt, &[pick(a), pick(b)]).unwrap(),
            _ => {
                let sel = g.add_op(Op::Gt, &[pick(a), pick(b)]).unwrap();
                g.add_mux(sel, pick(b), pick(c)).unwrap()
            }
        };
        values.push(node);
    }
    let last = *values.last().expect("nonempty");
    g.add_output("out", last).unwrap();
    g
}

fn check_schedule_matches_timing(_g: &Cdfg, s: &Schedule, t: &Timing) {
    for (node, step) in s.iter() {
        assert!(step >= t.asap(node), "node scheduled before its ASAP");
        assert!(step <= t.alap(node), "node scheduled after its ALAP");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ASAP is never larger than ALAP when the latency is at least the
    /// critical path, and mobility grows monotonically with latency.
    #[test]
    fn timing_feasible_at_critical_path(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let cp = g.critical_path_length().max(1);
        let t = Timing::compute(&g, cp);
        prop_assert!(t.is_feasible());
        let t_more = Timing::compute(&g, cp + recipe.extra_latency + 1);
        for (n, _, _) in t.iter() {
            let m0 = t.mobility(n).unwrap();
            let m1 = t_more.mobility(n).unwrap();
            prop_assert!(m1 >= m0, "mobility must not shrink when latency grows");
        }
    }

    /// Force-directed scheduling always returns a valid schedule within the
    /// latency, and every assignment lies inside the node's ASAP/ALAP frame.
    #[test]
    fn force_directed_schedules_are_valid(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let s = force::schedule(&g, latency).unwrap();
        prop_assert!(s.validate(&g).is_ok());
        prop_assert!(s.last_used_step() <= latency);
        let t = Timing::compute(&g, latency);
        check_schedule_matches_timing(&g, &s, &t);
    }

    /// List scheduling under the resource usage derived from force-directed
    /// scheduling always completes, respects the allocation, and lands close
    /// to the target latency (greedy list scheduling may exceed it by a
    /// small margin; the `hyper` entry point papers over that with a
    /// fallback, covered by `hyper_schedules_validate`).
    #[test]
    fn list_schedule_fits_force_directed_allocation(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let allocation = hyper::minimum_resources(&g, latency).unwrap();
        let constraint = ResourceConstraint::Limited(allocation);
        let s = list::schedule(&g, &constraint, latency).unwrap();
        prop_assert!(s.validate_with(&g, &constraint).is_ok());
        prop_assert!(s.last_used_step() <= latency + 2);
    }

    /// More latency keeps the heuristic resource requirement essentially
    /// monotone: per class it may grow by at most one unit (force-directed
    /// scheduling is a heuristic, not an exact minimiser), and it never
    /// exceeds the number of operations of that class.
    #[test]
    fn resources_monotone_in_latency(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let cp = g.critical_path_length().max(1);
        let tight = hyper::minimum_resources(&g, cp).unwrap();
        let relaxed = hyper::minimum_resources(&g, cp + 4).unwrap();
        let counts = g.op_counts();
        for class in OpClass::FUNCTIONAL {
            prop_assert!(
                relaxed.count(class) <= tight.count(class).max(1) + 1,
                "relaxing latency should not require noticeably more units of {class}"
            );
            prop_assert!(relaxed.count(class) <= counts.count(class).max(relaxed.count(class).min(1)));
        }
    }

    /// The hyper entry point agrees with validation for both constraint
    /// modes.
    #[test]
    fn hyper_schedules_validate(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let s1 = hyper::schedule(&g, &HyperOptions::with_latency(latency)).unwrap();
        prop_assert!(s1.validate(&g).is_ok());
        let alloc = s1.resource_usage(&g);
        let s2 = hyper::schedule(
            &g,
            &HyperOptions::with_resources(latency, ResourceConstraint::Limited(alloc.clone())),
        ).unwrap();
        prop_assert!(s2.validate_with(&g, &ResourceConstraint::Limited(alloc)).is_ok());
    }
}
