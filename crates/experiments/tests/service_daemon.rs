//! Proves the `--daemon` modes of the `sweep` and `pareto` binaries print
//! byte-identical JSON to their in-process modes, against a real daemon.

use std::process::Command;
use std::time::Duration;

use service::{Daemon, DaemonConfig};

fn bin_output(exe: &str, args: &[&str]) -> Vec<u8> {
    let output = Command::new(exe).args(args).output().expect("binary runs");
    assert!(
        output.status.success(),
        "{exe} {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output.stdout
}

#[test]
fn sweep_and_pareto_daemon_modes_match_in_process_json_byte_for_byte() {
    let socket =
        std::env::temp_dir().join(format!("sweepd-experiments-{}.sock", std::process::id()));
    let daemon = Daemon::start(DaemonConfig::new(&socket)).expect("daemon starts");
    assert!(service::wait_for_socket(&socket, Duration::from_secs(10)));
    let socket_str = socket.to_str().expect("utf-8 socket path");

    let sweep = env!("CARGO_BIN_EXE_sweep");
    let in_process = bin_output(sweep, &["--small", "--json"]);
    let via_daemon = bin_output(sweep, &["--small", "--json", "--daemon", socket_str]);
    assert!(in_process == via_daemon, "sweep --daemon JSON diverged from in-process");

    // A second pass is warm in the daemon but cold in-process: still equal.
    let warm = bin_output(sweep, &["--small", "--json", "--daemon", socket_str]);
    assert!(in_process == warm, "warm sweep --daemon JSON diverged");

    // Generated workloads go through the gen-spec registration path.
    let gen = "family=mux-tree,seed=11,count=4";
    let in_process = bin_output(sweep, &["--json", "--gen", gen]);
    let via_daemon = bin_output(sweep, &["--json", "--gen", gen, "--daemon", socket_str]);
    assert!(in_process == via_daemon, "sweep --gen --daemon JSON diverged");

    let pareto = env!("CARGO_BIN_EXE_pareto");
    let in_process = bin_output(pareto, &["--small", "--json"]);
    let via_daemon = bin_output(pareto, &["--small", "--json", "--daemon", socket_str]);
    assert!(in_process == via_daemon, "pareto --daemon JSON diverged from in-process");

    daemon.shutdown();
    daemon.join();
}
