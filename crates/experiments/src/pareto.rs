//! The Pareto exploration study behind `cargo run -p experiments --bin
//! pareto`.
//!
//! Where [`crate::sweep`] samples the paper's hand-picked budget lists,
//! this module turns the repro into a continuous design-space explorer: it
//! walks every circuit (the paper's four, or generated workloads) across
//! its full feasible budget range on the engine's warm-started
//! [`engine::Engine::explore`] path and reports the latency–power fronts
//! under the scaled-delay (DVS-style) energy model.

use circuits::all_benchmarks;
use engine::{BudgetCeiling, BudgetPolicy, Engine, ExploreOptions, ExploreRequest, ParetoReport};
use gen::GenSpec;
use power::DelayScaling;

use crate::ExperimentError;

/// One exploration request per paper circuit, seeded with its Table II
/// budgets (the [`BudgetPolicy::Fixed`] fallback).  With `small` set, the
/// heavyweight `cordic` circuit is dropped — the CI smoke configuration.
pub fn paper_requests(small: bool) -> Vec<ExploreRequest> {
    let mut requests = vec![ExploreRequest::new("abs_diff").budgets([2, 3])];
    for bench in all_benchmarks() {
        if small && bench.name == "cordic" {
            continue;
        }
        requests
            .push(ExploreRequest::new(bench.name.as_str()).budgets(bench.control_steps.clone()));
    }
    requests
}

/// The study's default knobs: a Pareto walk to `critical path + span` under
/// the quadratic (voltage-square-law) scaling.
pub fn default_options(span: u32) -> ExploreOptions {
    ExploreOptions::new()
        .policy(BudgetPolicy::Pareto)
        .ceiling(BudgetCeiling::CriticalPathPlus(span))
        .scaling(DelayScaling::Quadratic)
}

/// Explores the paper circuits.
///
/// # Errors
///
/// Kept fallible for symmetry with the other studies; the paper circuits
/// themselves never fail to build.
pub fn explore_paper(
    small: bool,
    options: &ExploreOptions,
    threads: usize,
) -> Result<ParetoReport, ExperimentError> {
    let engine = Engine::new();
    Ok(engine.explore(&paper_requests(small), options, threads))
}

/// Explores generated workloads: every circuit of every spec, each walked
/// across its own budget range.
///
/// # Errors
///
/// Propagates generator knob violations.
pub fn explore_generated(
    specs: &[GenSpec],
    options: &ExploreOptions,
    threads: usize,
) -> Result<ParetoReport, ExperimentError> {
    let mut engine = Engine::new();
    let mut requests = Vec::new();
    for spec in specs {
        let batch = gen::generate(spec)?;
        for bench in &batch {
            requests.push(
                ExploreRequest::new(bench.name.as_str()).budgets(bench.control_steps.clone()),
            );
        }
        engine.register_benchmarks(batch);
    }
    Ok(engine.explore(&requests, options, threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen::Family;

    #[test]
    fn paper_requests_cover_the_table_circuits() {
        let full = paper_requests(false);
        let names: Vec<&str> = full.iter().map(|r| r.circuit.as_str()).collect();
        assert_eq!(names, vec!["abs_diff", "dealer", "gcd", "vender", "cordic"]);
        let small = paper_requests(true);
        assert!(small.iter().all(|r| r.circuit != "cordic"));
        assert!(small.iter().all(|r| !r.budgets.is_empty()));
    }

    #[test]
    fn paper_exploration_produces_non_dominated_fronts_without_failures() {
        let report = explore_paper(true, &default_options(4), 2).unwrap();
        assert_eq!(report.failure_count(), 0);
        for circuit in &report.circuits {
            assert!(!circuit.points.is_empty(), "{}", circuit.circuit);
            assert_eq!(circuit.points[0].budget, circuit.critical_path);
            // The front is non-dominated in (budget, energy, area): a
            // bigger budget must buy strictly lower energy or area to stay
            // on it (combined_reduction alone is no longer monotone now
            // that area is a real objective).
            for pair in circuit.points.windows(2) {
                assert!(pair[0].budget < pair[1].budget, "{}", circuit.circuit);
                assert!(
                    pair[1].energy.total_cmp(&pair[0].energy).is_lt()
                        || pair[1].area.total_cmp(&pair[0].area).is_lt(),
                    "{}: point @ {} should be dominated",
                    circuit.circuit,
                    pair[1].budget
                );
            }
        }
    }

    #[test]
    fn generated_exploration_is_deterministic_across_threads() {
        let specs = vec![GenSpec::new(Family::MuxTree, 5, 2)];
        let options = default_options(3);
        let a = explore_generated(&specs, &options, 1).unwrap();
        let b = explore_generated(&specs, &options, 4).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.failure_count(), 0);
    }
}
