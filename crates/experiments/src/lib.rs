//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Every tabular artifact is a declarative [`engine`] sweep plan executed on
//! the parallel scenario engine; the modules here only translate sweep
//! records into the paper's row layouts.
//!
//! | paper artifact | module | binary |
//! |----------------|--------|--------|
//! | Figure 1 (2-step \|a−b\| schedule) | [`figures::figure1`] | `cargo run -p experiments --bin figure1` |
//! | Figure 2 (3-step schedules, traditional vs power-managed) | [`figures::figure2`] | `--bin figure2` |
//! | Table I (circuit statistics) | [`mod@table1`] | `--bin table1` |
//! | Table II (expected operation executions & datapath power reduction) | [`mod@table2`] | `--bin table2` |
//! | Table III (gate-level area & power, Synopsys substitute) | [`mod@table3`] | `--bin table3` |
//! | Section IV-A (multiplexor reordering) | [`ablation`] | `--bin ablation_reorder` |
//! | Section IV-B (pipelining) | [`ablation`] | `--bin ablation_pipeline` |
//! | Branch-probability sensitivity (Section V's fairness assumption) | [`sensitivity`] | `--bin sensitivity` |
//! | Full scenario matrix (all of the above dimensions at once) | [`sweep`] | `--bin sweep` |
//! | Generated-workload distributions (beyond the paper) | [`genweep`] | `--bin genweep` |
//! | Latency–power Pareto fronts over the full budget range (beyond the paper) | [`pareto`] | `--bin pareto` |
//! | Sweep-service determinism smoke (beyond the paper) | [`serviceweep`] | `--bin serviceweep` |
//! | Online incremental-repair study (beyond the paper) | [`onlineweep`] | `--bin onlineweep` |
//! | Fine-grained DVS policies & kernel optimality gap (beyond the paper) | [`dvsweep`] | `--bin dvsweep` |
//!
//! The `table1`, `table2`, `table3` and `sensitivity` binaries accept a
//! `--json` flag that emits the engine's machine-readable report instead of
//! the pretty table; `sweep` additionally accepts `--csv`, `--threads N`
//! and `--small`.
//!
//! Absolute numbers differ from the paper (different benchmark
//! reconstructions, different power model), but every qualitative claim is
//! reproduced; see `EXPERIMENTS.md` at the repository root for the
//! side-by-side comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use engine::{EngineError, Scenario, ScenarioMetrics, SweepRecord, SweepReport};

pub mod ablation;
pub mod dvsweep;
pub mod figures;
pub mod genweep;
pub mod onlineweep;
pub mod pareto;
pub mod sensitivity;
pub mod serviceweep;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;

pub use crate::table1::{table1, Table1Row};
pub use crate::table2::{table2, table2_for, Table2Row};
pub use crate::table3::{table3, table3_for, Table3Row};

/// Error from an engine-backed experiment: which scenario failed, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentError {
    /// The scenario (or plan) the failure belongs to.
    pub context: String,
    /// The underlying failure message.
    pub message: String,
}

impl ExperimentError {
    /// Builds the error for a failed (or missing) sweep record.
    pub fn for_record(context: impl fmt::Display, record: Option<&SweepRecord>) -> Self {
        ExperimentError {
            context: context.to_string(),
            message: match record.and_then(SweepRecord::error) {
                Some(error) => error.to_owned(),
                None => "scenario missing from sweep report".to_owned(),
            },
        }
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.context, self.message)
    }
}

impl std::error::Error for ExperimentError {}

impl From<EngineError> for ExperimentError {
    fn from(e: EngineError) -> Self {
        ExperimentError { context: "sweep plan".to_owned(), message: e.to_string() }
    }
}

impl From<gen::GenError> for ExperimentError {
    fn from(e: gen::GenError) -> Self {
        ExperimentError { context: "workload generator".to_owned(), message: e.to_string() }
    }
}

/// Looks up one scenario's metrics in a sweep report, converting a missing
/// or failed record into an [`ExperimentError`].
pub(crate) fn metrics_for<'r>(
    report: &'r SweepReport,
    scenario: &Scenario,
) -> Result<&'r ScenarioMetrics, ExperimentError> {
    let record = report.record_for(scenario);
    record.and_then(|r| r.metrics()).ok_or_else(|| ExperimentError::for_record(scenario, record))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_error_display_and_conversions() {
        let e: ExperimentError = EngineError::EmptyPlan.into();
        assert!(e.to_string().contains("sweep plan"));
        let e = ExperimentError::for_record("dealer@6", None);
        assert!(e.to_string().contains("missing from sweep report"));
    }
}
