//! Experiment harness: regenerates every table and figure of the paper.
//!
//! | paper artifact | module | binary |
//! |----------------|--------|--------|
//! | Figure 1 (2-step \|a−b\| schedule) | [`figures::figure1`] | `cargo run -p experiments --bin figure1` |
//! | Figure 2 (3-step schedules, traditional vs power-managed) | [`figures::figure2`] | `--bin figure2` |
//! | Table I (circuit statistics) | [`table1`] | `--bin table1` |
//! | Table II (expected operation executions & datapath power reduction) | [`table2`] | `--bin table2` |
//! | Table III (gate-level area & power, Synopsys substitute) | [`table3`] | `--bin table3` |
//! | Section IV-A (multiplexor reordering) | [`ablation`] | `--bin ablation_reorder` |
//! | Section IV-B (pipelining) | [`ablation`] | `--bin ablation_pipeline` |
//! | Branch-probability sensitivity (Section V's fairness assumption) | [`sensitivity`] | `--bin sensitivity` |
//!
//! Absolute numbers differ from the paper (different benchmark
//! reconstructions, different power model), but every qualitative claim is
//! reproduced; see `EXPERIMENTS.md` at the repository root for the
//! side-by-side comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod figures;
pub mod sensitivity;
pub mod table1;
pub mod table2;
pub mod table3;

pub use crate::table1::{table1, Table1Row};
pub use crate::table2::{table2, table2_for, Table2Row};
pub use crate::table3::{table3, table3_for, Table3Row};
