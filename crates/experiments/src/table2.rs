//! Table II: power-managed multiplexors, execution-unit area increase,
//! expected operation executions and datapath power reduction.

use cdfg::{Cdfg, OpClass};
use circuits::all_benchmarks;
use engine::{Engine, Scenario, SweepPlan, SweepReport};
use pmsched::{
    power_manage, OpWeights, PowerManageError, PowerManagementOptions, SelectProbabilities,
};

use crate::{metrics_for, ExperimentError};

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Circuit name.
    pub circuit: String,
    /// Control steps allowed for one computation.
    pub control_steps: u32,
    /// Number of multiplexors selected for power management.
    pub pm_muxes: usize,
    /// Execution-unit area of the power-managed design relative to the
    /// traditionally scheduled design (1.0 = no increase).
    pub area_increase: f64,
    /// Expected executions of each class per computation, in the paper's
    /// column order: MUX, COMP, +, −, ×.
    pub expected: [f64; 5],
    /// Datapath power reduction in percent.
    pub power_reduction: f64,
}

impl Table2Row {
    /// Renders the row in the paper's layout.
    pub fn render(&self) -> String {
        format!(
            "{:<8} {:>3} {:>5} {:>6.2} {:>7.2} {:>7.2} {:>6.2} {:>6.2} {:>6.2} {:>8.2}",
            self.circuit,
            self.control_steps,
            self.pm_muxes,
            self.area_increase,
            self.expected[0],
            self.expected[1],
            self.expected[2],
            self.expected[3],
            self.expected[4],
            self.power_reduction
        )
    }
}

/// Computes one Table II row.
///
/// # Errors
///
/// Propagates scheduling failures (e.g. a control-step budget below the
/// circuit's critical path).
pub fn table2_for(cdfg: &Cdfg, control_steps: u32) -> Result<Table2Row, PowerManageError> {
    let result = power_manage(cdfg, &PowerManagementOptions::with_latency(control_steps))?;
    let savings = result.savings_with(&SelectProbabilities::fair(), &OpWeights::paper_power());
    let expected = [
        savings.expected(OpClass::Mux),
        savings.expected(OpClass::Comp),
        savings.expected(OpClass::Add),
        savings.expected(OpClass::Sub),
        savings.expected(OpClass::Mul),
    ];
    Ok(Table2Row {
        circuit: cdfg.name().to_owned(),
        control_steps,
        pm_muxes: result.managed_mux_count(),
        area_increase: result.area_increase(&OpWeights::paper_area()),
        expected,
        power_reduction: savings.reduction_percent,
    })
}

/// The declarative Table II sweep plan: every benchmark at every
/// control-step budget the paper evaluates, with every knob at the paper's
/// defaults (force-directed scheduler, no pipelining, no reordering, fair
/// branch probabilities).
pub fn table2_plan() -> SweepPlan {
    let mut builder = SweepPlan::builder();
    for bench in all_benchmarks() {
        for &steps in &bench.control_steps {
            builder = builder.case(bench.name.as_str(), steps);
        }
    }
    builder.build().expect("Table II plan is non-empty and valid")
}

/// Runs the Table II sweep through the parallel engine and returns the raw
/// engine report (the `--json` output of the `table2` binary).
pub fn table2_report() -> SweepReport {
    Engine::new().run(&table2_plan(), 0)
}

/// Computes all Table II rows (every benchmark at every control-step budget
/// evaluated in the paper), through the sweep engine.
///
/// # Errors
///
/// Reports the first scenario the engine could not execute.
pub fn table2() -> Result<Vec<Table2Row>, ExperimentError> {
    rows_from_report(&table2_report())
}

/// Translates the engine report into the paper's row order (benchmark
/// order, then ascending control steps).
fn rows_from_report(report: &SweepReport) -> Result<Vec<Table2Row>, ExperimentError> {
    let mut rows = Vec::new();
    for bench in all_benchmarks() {
        for &steps in &bench.control_steps {
            let metrics = metrics_for(report, &Scenario::new(bench.name.as_str(), steps))?;
            rows.push(Table2Row {
                circuit: bench.name.clone(),
                control_steps: steps,
                pm_muxes: metrics.pm_muxes,
                area_increase: metrics.area_increase,
                expected: metrics.expected,
                power_reduction: metrics.power_reduction,
            });
        }
    }
    Ok(rows)
}

/// Renders Table II in the paper's layout.
pub fn render(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str("Table II: average number of operations executed using power management\n");
    out.push_str(&format!(
        "{:<8} {:>3} {:>5} {:>6} {:>7} {:>7} {:>6} {:>6} {:>6} {:>8}\n",
        "Circuit", "Stp", "Muxs", "Area", "MUX", "COMP", "+", "-", "*", "Red.(%)"
    ));
    for row in rows {
        out.push_str(&row.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{dealer, gcd, vender};

    #[test]
    fn more_control_steps_never_reduce_managed_muxes_or_savings() {
        for bench in all_benchmarks() {
            if bench.name == "cordic" {
                continue; // covered separately; keep the test fast
            }
            let mut previous: Option<Table2Row> = None;
            for &steps in &bench.control_steps {
                let row = table2_for(&bench.cdfg, steps).unwrap();
                if let Some(prev) = &previous {
                    assert!(
                        row.pm_muxes >= prev.pm_muxes,
                        "{}: muxes dropped from {} to {} when steps grew",
                        bench.name,
                        prev.pm_muxes,
                        row.pm_muxes
                    );
                    assert!(
                        row.power_reduction >= prev.power_reduction - 1e-6,
                        "{}: savings dropped when steps grew",
                        bench.name
                    );
                }
                previous = Some(row);
            }
        }
    }

    #[test]
    fn vender_has_the_largest_savings_and_gcd_the_smallest() {
        // The paper's ordering: vender (41.67%) > dealer (27-33%) > gcd
        // (11-16%) for their evaluated budgets.
        let dealer_row = table2_for(&dealer(), 6).unwrap();
        let gcd_row = table2_for(&gcd(), 7).unwrap();
        let vender_row = table2_for(&vender(), 6).unwrap();
        assert!(vender_row.power_reduction > dealer_row.power_reduction);
        assert!(dealer_row.power_reduction > gcd_row.power_reduction);
        assert!(
            vender_row.power_reduction > 25.0,
            "vender saves a lot: {}",
            vender_row.power_reduction
        );
        assert!(gcd_row.power_reduction > 2.0, "gcd still saves something");
        assert!(gcd_row.power_reduction < 25.0);
    }

    #[test]
    fn expected_counts_never_exceed_static_counts() {
        for row in table2().unwrap() {
            let bench = all_benchmarks()
                .into_iter()
                .find(|b| b.name == row.circuit)
                .expect("known circuit");
            let counts = bench.cdfg.op_counts();
            let statics = [counts.mux, counts.comp, counts.add, counts.sub, counts.mul];
            for (expected, &static_count) in row.expected.iter().zip(&statics) {
                assert!(*expected <= static_count as f64 + 1e-9);
            }
            assert!(row.power_reduction >= -1e-9 && row.power_reduction <= 100.0);
            assert!(row.area_increase > 0.5 && row.area_increase < 2.0, "area ratio sane");
        }
    }

    #[test]
    fn savings_land_in_the_paper_band() {
        // The headline claim: "this scheduling technique can save up to 40%
        // in power dissipation", with per-circuit savings roughly between
        // 10% and 45%.
        let rows = table2().unwrap();
        let best = rows.iter().map(|r| r.power_reduction).fold(0.0f64, f64::max);
        assert!(best > 30.0, "best saving should approach the paper's 40%: {best}");
        assert!(best <= 60.0, "savings stay physically plausible: {best}");
    }

    #[test]
    fn engine_path_reproduces_the_direct_path_exactly() {
        // The golden guarantee of the sweep rewrite: routing Table II
        // through the parallel engine changes no number.
        let engine_rows = table2().unwrap();
        let mut direct_rows = Vec::new();
        for bench in all_benchmarks() {
            for &steps in &bench.control_steps {
                direct_rows.push(table2_for(&bench.cdfg, steps).unwrap());
            }
        }
        assert_eq!(engine_rows, direct_rows);
    }

    #[test]
    fn render_has_one_line_per_row_plus_header() {
        let rows = table2().unwrap();
        let text = render(&rows);
        assert_eq!(text.lines().count(), rows.len() + 2);
        assert!(text.contains("Red.(%)"));
    }
}
