//! The `serviceweep` smoke study: the paper matrix through the sweep
//! service, with the determinism contract checked end to end.
//!
//! The study starts an in-process `sweepd` daemon, runs the full scenario
//! matrix three ways — against the cold daemon, interleaved with a
//! concurrent generated-workload job, and as a warm re-submission — and
//! byte-compares every report against the in-process [`engine::Engine::run`]
//! baseline.  It also reports the warm job's cache hit rate: the service's
//! reason to exist is that a warm job should pay only cache lookups.

use std::fmt::Write as _;

use engine::report::json_number;
use engine::{CacheStats, Engine};
use service::{Client, Daemon, DaemonConfig, JobSpec, JobState, ServiceError};

use crate::ExperimentError;

/// Everything the study measures.
#[derive(Debug, Clone)]
pub struct ServiceweepOutcome {
    /// Scenarios in the paper matrix job.
    pub scenarios: usize,
    /// Bytes of the report JSON all four runs must agree on.
    pub report_bytes: usize,
    /// Cold daemon report == in-process report.
    pub cold_identical: bool,
    /// Report interleaved with a concurrent gen job == in-process report.
    pub interleaved_identical: bool,
    /// Warm re-submission report == in-process report.
    pub warm_identical: bool,
    /// The cold job's cache delta.
    pub cold_cache: CacheStats,
    /// The warm job's cache delta.
    pub warm_cache: CacheStats,
    /// The warm job's hit rate (1.0 = every prefix lookup hit).
    pub warm_hit_rate: f64,
    /// Scenarios in the interleaved generated job.
    pub gen_scenarios: usize,
}

impl ServiceweepOutcome {
    /// Whether every service-side report matched the in-process bytes.
    pub fn all_identical(&self) -> bool {
        self.cold_identical && self.interleaved_identical && self.warm_identical
    }
}

fn service_err(e: ServiceError) -> ExperimentError {
    ExperimentError { context: "sweep service".to_owned(), message: e.to_string() }
}

/// Runs the study (see the module docs).  `small` selects the CI smoke
/// matrix; `threads` sizes the daemon's engine pool (0 = all cores).
///
/// # Errors
///
/// Propagates daemon startup and protocol failures; report *mismatches* are
/// reported in the outcome, not as errors.
pub fn run_serviceweep(small: bool, threads: usize) -> Result<ServiceweepOutcome, ExperimentError> {
    let plan = crate::sweep::full_matrix_plan(small)?;
    let scenarios = plan.scenarios().to_vec();
    let engine = Engine::new();
    let baseline = engine.run(&plan, threads).to_json();

    let socket =
        std::env::temp_dir().join(format!("serviceweep-{}-{small}.sock", std::process::id()));
    let daemon =
        Daemon::start(DaemonConfig { socket, threads, limits: Default::default() }).map_err(
            |e| ExperimentError { context: "sweep service".to_owned(), message: e.to_string() },
        )?;

    let run_matrix = |socket: &std::path::Path| -> Result<service::JobOutcome, ServiceError> {
        Client::connect(socket)?.submit_and_wait(JobSpec::sweep(scenarios.clone()))
    };

    let cold = run_matrix(daemon.socket()).map_err(service_err)?;

    // Interleave a generated job with a second matrix submission: two
    // clients race, the FIFO executor serializes, neither result may move.
    let gen_spec = vec!["family=mux-tree,seed=11,count=6".to_owned()];
    let gen_scenarios = service::plans::gen_scenarios(&gen_spec)
        .map_err(|message| ExperimentError { context: "sweep service".to_owned(), message })?;
    let gen_job = JobSpec::Sweep {
        gen: gen_spec,
        scenarios: gen_scenarios.clone(),
        policy: engine::BudgetPolicy::Fixed,
        gate_level: None,
    };
    let gen_thread = {
        let socket = daemon.socket().to_path_buf();
        std::thread::spawn(move || Client::connect(&socket)?.submit_and_wait(gen_job))
    };
    let interleaved = run_matrix(daemon.socket()).map_err(service_err)?;
    let gen_outcome = gen_thread.join().expect("gen submitter thread").map_err(service_err)?;
    if gen_outcome.state != JobState::Done {
        return Err(ExperimentError {
            context: "sweep service".to_owned(),
            message: format!("interleaved gen job ended {}", gen_outcome.state),
        });
    }

    let warm = run_matrix(daemon.socket()).map_err(service_err)?;

    daemon.shutdown();
    daemon.join();

    let matches = |outcome: &service::JobOutcome| outcome.report.as_deref() == Some(&*baseline);
    let warm_cache = warm.job_cache.unwrap_or_default();
    Ok(ServiceweepOutcome {
        scenarios: scenarios.len(),
        report_bytes: baseline.len(),
        cold_identical: matches(&cold),
        interleaved_identical: matches(&interleaved),
        warm_identical: matches(&warm),
        cold_cache: cold.job_cache.unwrap_or_default(),
        warm_cache,
        warm_hit_rate: warm_cache.hit_rate(),
        gen_scenarios: gen_scenarios.len(),
    })
}

/// Renders the study summary.
pub fn render(outcome: &ServiceweepOutcome) -> String {
    let mut out = String::new();
    let verdict = |same: bool| if same { "byte-identical" } else { "MISMATCH" };
    let _ = writeln!(
        out,
        "paper matrix: {} scenarios, report {} bytes",
        outcome.scenarios, outcome.report_bytes
    );
    let _ = writeln!(
        out,
        "cold daemon:        {} (cache: {} computed, {} reused)",
        verdict(outcome.cold_identical),
        outcome.cold_cache.misses,
        outcome.cold_cache.hits
    );
    let _ = writeln!(
        out,
        "interleaved (+{} gen scenarios): {}",
        outcome.gen_scenarios,
        verdict(outcome.interleaved_identical)
    );
    let _ = writeln!(
        out,
        "warm re-submit:     {} (cache: {} computed, {} reused, hit rate {:.1}%)",
        verdict(outcome.warm_identical),
        outcome.warm_cache.misses,
        outcome.warm_cache.hits,
        outcome.warm_hit_rate * 100.0
    );
    out
}

/// Renders the study summary as JSON (stable key order).
pub fn to_json(outcome: &ServiceweepOutcome) -> String {
    format!(
        "{{\n  \"scenarios\": {}, \"report_bytes\": {},\n  \"cold_identical\": {}, \
         \"interleaved_identical\": {}, \"warm_identical\": {},\n  \"cold_cache\": {}, \
         \"warm_cache\": {}, \"warm_hit_rate\": {},\n  \"gen_scenarios\": {}\n}}\n",
        outcome.scenarios,
        outcome.report_bytes,
        outcome.cold_identical,
        outcome.interleaved_identical,
        outcome.warm_identical,
        cache_json(outcome.cold_cache),
        cache_json(outcome.warm_cache),
        json_number(outcome.warm_hit_rate),
        outcome.gen_scenarios,
    )
}

fn cache_json(cache: CacheStats) -> String {
    format!(
        "{{\"hits\": {}, \"misses\": {}, \"entries\": {}}}",
        cache.hits, cache.misses, cache.entries
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_reports_identity_and_a_fully_warm_cache() {
        let outcome = run_serviceweep(true, 2).unwrap();
        assert!(outcome.all_identical(), "{outcome:?}");
        assert!(outcome.cold_cache.misses > 0, "cold job computes prefixes");
        assert_eq!(outcome.warm_cache.misses, 0, "warm job misses nothing");
        assert_eq!(outcome.warm_hit_rate, 1.0);
        let text = render(&outcome);
        assert!(text.contains("byte-identical"));
        assert!(!text.contains("MISMATCH"));
        assert!(to_json(&outcome).contains("\"warm_hit_rate\": 1"));
    }
}
