//! The full scenario matrix behind `cargo run -p experiments --bin sweep`.
//!
//! Where every other module reproduces one table of the paper, this one
//! maps out the whole trade-off family the paper samples: every Table I
//! circuit at every Table II control-step budget, crossed with both final
//! schedulers, pipelining, the Section IV-A reordering search and a few
//! branch-probability models.  The engine deduplicates the matrix, shares
//! scheduling prefixes through its memo cache and executes the rest in
//! parallel.

use circuits::all_benchmarks;
use engine::{BranchModel, CacheStats, Engine, SchedulerKind, SweepPlan, SweepReport};

use crate::ExperimentError;

/// The full sweep matrix over all Table I circuits.
///
/// With `small` set, the heavyweight `cordic` circuit, the pipelined
/// scenarios and the biased branch models are dropped — the configuration
/// the CI smoke step runs.
///
/// # Errors
///
/// Never fails in practice (the matrix is statically non-empty); kept
/// fallible so callers see plan validation.
pub fn full_matrix_plan(small: bool) -> Result<SweepPlan, ExperimentError> {
    let mut builder = SweepPlan::builder();
    for bench in all_benchmarks() {
        if small && bench.name == "cordic" {
            continue;
        }
        for &steps in &bench.control_steps {
            builder = builder.case(bench.name.as_str(), steps);
        }
    }
    builder = builder
        .schedulers([SchedulerKind::ForceDirected, SchedulerKind::List])
        .reorder([false, true]);
    if small {
        builder = builder.pipeline_depths([1]).branch_models([BranchModel::Fair]);
    } else {
        builder = builder.pipeline_depths([1, 2]).branch_models([
            BranchModel::Fair,
            BranchModel::biased(100),
            BranchModel::biased(900),
        ]);
    }
    Ok(builder.build()?)
}

/// Runs the full matrix on `threads` workers (0 = one per CPU) and returns
/// the report together with the engine's cache counters.
///
/// # Errors
///
/// Propagates plan-construction failures; scenario failures stay inside the
/// report.
pub fn run_full_matrix(
    small: bool,
    threads: usize,
) -> Result<(SweepReport, CacheStats), ExperimentError> {
    let plan = full_matrix_plan(small)?;
    let engine = Engine::new();
    let report = engine.run(&plan, threads);
    Ok((report, engine.cache_stats()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matrix_covers_every_dimension_but_stays_small() {
        let plan = full_matrix_plan(true).unwrap();
        // 8 (circuit, budget) cases × 2 schedulers × 2 reorder settings.
        assert_eq!(plan.len(), 32);
        assert!(plan.scenarios().iter().all(|s| s.circuit != "cordic"));
        assert!(plan.scenarios().iter().any(|s| s.scheduler == SchedulerKind::List));
        assert!(plan.scenarios().iter().any(|s| s.reorder));
    }

    #[test]
    fn full_matrix_includes_cordic_pipelining_and_biased_models() {
        let plan = full_matrix_plan(false).unwrap();
        // 10 cases × 2 schedulers × 2 depths × 2 reorder × 3 models.
        assert_eq!(plan.len(), 240);
        assert!(plan.scenarios().iter().any(|s| s.circuit == "cordic"));
        assert!(plan.scenarios().iter().any(|s| s.pipeline_depth == 2));
        assert!(plan.scenarios().iter().any(|s| s.branch_model == BranchModel::biased(900)));
    }

    #[test]
    fn small_matrix_runs_clean_and_reuses_prefixes() {
        let (report, stats) = run_full_matrix(true, 2).unwrap();
        assert_eq!(report.failure_count(), 0);
        assert_eq!(report.records.len(), 32);
        // Reorder on/off are distinct prefixes here, so 32 scenarios need
        // exactly 32 prefix computations — but a re-run would need zero.
        assert_eq!(stats.lookups(), 32);
        assert!(!report.summaries.is_empty());
        assert!(!report.pareto.is_empty());
    }
}
