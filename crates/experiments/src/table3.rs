//! Table III: gate-level area and power comparison (the Synopsys Design
//! Compiler / DesignPower substitute).

use cdfg::Cdfg;
use engine::{Engine, Scenario, SweepPlan, SweepReport};
use power::estimate::{gate_level_comparison, EstimateError, GateLevelOptions};

use crate::{metrics_for, ExperimentError};

/// The (circuit, control steps) pairs the paper synthesised for Table III.
const TABLE3_CASES: [(&str, u32); 3] = [("dealer", 6), ("gcd", 7), ("vender", 6)];

/// One row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Circuit name.
    pub circuit: String,
    /// Control steps allowed.
    pub control_steps: u32,
    /// Gate-equivalent area of the original (traditionally scheduled)
    /// design.
    pub orig_area: f64,
    /// Gate-equivalent area of the power-managed design.
    pub new_area: f64,
    /// `new_area / orig_area`.
    pub area_increase: f64,
    /// Simulated power of the original design (arbitrary units).
    pub orig_power: f64,
    /// Simulated power of the power-managed design.
    pub new_power: f64,
    /// Power reduction in percent.
    pub power_reduction: f64,
}

impl Table3Row {
    /// Renders the row in the paper's layout.
    pub fn render(&self) -> String {
        format!(
            "{:<8} {:>3} {:>8.0} {:>8.0} {:>6.2} {:>8.1} {:>8.1} {:>6.1}",
            self.circuit,
            self.control_steps,
            self.orig_area,
            self.new_area,
            self.area_increase,
            self.orig_power,
            self.new_power,
            self.power_reduction
        )
    }
}

/// Number of random input samples used per circuit (enough for the averages
/// to stabilise while keeping the harness fast).
pub const DEFAULT_SAMPLES: usize = 500;

/// Computes one Table III row.
///
/// # Errors
///
/// Propagates scheduling, binding or simulation failures.
pub fn table3_for(
    cdfg: &Cdfg,
    control_steps: u32,
    samples: usize,
) -> Result<Table3Row, EstimateError> {
    let report =
        gate_level_comparison(cdfg, &GateLevelOptions::new(control_steps).samples(samples))?;
    Ok(Table3Row {
        circuit: cdfg.name().to_owned(),
        control_steps,
        orig_area: report.original_area,
        new_area: report.managed_area,
        area_increase: report.area_ratio,
        orig_power: report.original_power,
        new_power: report.managed_power,
        power_reduction: report.power_reduction_percent,
    })
}

/// The declarative Table III sweep plan (dealer at 6 steps, gcd at 7,
/// vender at 6 — the same budgets the paper synthesised), with gate-level
/// simulation of `samples` random vectors per scenario.
pub fn table3_plan(samples: usize) -> SweepPlan {
    let mut builder = SweepPlan::builder();
    for (circuit, steps) in TABLE3_CASES {
        builder = builder.case(circuit, steps);
    }
    builder.gate_level(samples, 0xDAC96).build().expect("Table III plan is non-empty and valid")
}

/// Runs the Table III sweep through the parallel engine and returns the raw
/// engine report (the `--json` output of the `table3` binary).
pub fn table3_report(samples: usize) -> SweepReport {
    Engine::new().run(&table3_plan(samples), 0)
}

/// Computes the three rows of Table III through the sweep engine.
///
/// # Errors
///
/// Reports the first scenario the engine could not execute.
pub fn table3() -> Result<Vec<Table3Row>, ExperimentError> {
    let report = table3_report(DEFAULT_SAMPLES);
    let mut rows = Vec::new();
    for (circuit, steps) in TABLE3_CASES {
        let scenario = Scenario::new(circuit, steps);
        let gate =
            metrics_for(&report, &scenario)?.gate.as_ref().ok_or_else(|| ExperimentError {
                context: scenario.to_string(),
                message: "gate-level metrics missing from sweep report".to_owned(),
            })?;
        rows.push(Table3Row {
            circuit: circuit.to_owned(),
            control_steps: steps,
            orig_area: gate.original_area,
            new_area: gate.managed_area,
            area_increase: gate.area_ratio,
            orig_power: gate.original_power,
            new_power: gate.managed_power,
            power_reduction: gate.power_reduction,
        });
    }
    Ok(rows)
}

/// Renders Table III in the paper's layout.
pub fn render(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Table III: power estimation at gate level (simulation substitute)\n");
    out.push_str(&format!(
        "{:<8} {:>3} {:>8} {:>8} {:>6} {:>8} {:>8} {:>6}\n",
        "Circuit", "Stp", "AreaOrig", "AreaNew", "Incr", "PwrOrig", "PwrNew", "%"
    ));
    for row in rows {
        out.push_str(&row.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::table2_for;
    use circuits::{dealer, gcd, vender};

    #[test]
    fn table3_rows_reproduce_the_paper_shape() {
        let rows = table3().unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            // Every circuit saves power at gate level, and the area penalty
            // stays small (the paper sees 0.98x to 1.11x).
            assert!(row.power_reduction > 1.0, "{}: {}", row.circuit, row.power_reduction);
            assert!(row.power_reduction < 60.0);
            assert!(
                row.area_increase > 0.85 && row.area_increase < 1.4,
                "{}: {}",
                row.circuit,
                row.area_increase
            );
            assert!(row.new_power < row.orig_power);
        }
        // vender remains the biggest winner, as in the paper (32.8% vs 24.5%
        // and 10.0%).
        let vender_row = rows.iter().find(|r| r.circuit == "vender").unwrap();
        let gcd_row = rows.iter().find(|r| r.circuit == "gcd").unwrap();
        assert!(vender_row.power_reduction > gcd_row.power_reduction);
    }

    #[test]
    fn gate_level_savings_track_datapath_savings_from_below() {
        // The paper: gate-level savings are slightly lower than the
        // datapath-only estimate because the controller grows.
        for (cdfg, steps) in [(dealer(), 6u32), (vender(), 6u32)] {
            let datapath_row = table2_for(&cdfg, steps).unwrap();
            let gate_row = table3_for(&cdfg, steps, 300).unwrap();
            assert!(
                gate_row.power_reduction <= datapath_row.power_reduction + 10.0,
                "{}: gate-level {} should not wildly exceed datapath {}",
                cdfg.name(),
                gate_row.power_reduction,
                datapath_row.power_reduction
            );
            assert!(gate_row.power_reduction > 0.0);
        }
    }

    #[test]
    fn engine_path_reproduces_the_direct_path_exactly() {
        // The engine's cached-prefix gate-level path must emit the same
        // bytes as the original direct flow, sample for sample.
        let engine_rows = table3().unwrap();
        let direct_rows = vec![
            table3_for(&dealer(), 6, DEFAULT_SAMPLES).unwrap(),
            table3_for(&gcd(), 7, DEFAULT_SAMPLES).unwrap(),
            table3_for(&vender(), 6, DEFAULT_SAMPLES).unwrap(),
        ];
        assert_eq!(engine_rows, direct_rows);
    }

    #[test]
    fn render_includes_all_columns() {
        let rows = table3().unwrap();
        let text = render(&rows);
        assert!(text.contains("AreaOrig"));
        assert_eq!(text.lines().count(), rows.len() + 2);
    }
}
