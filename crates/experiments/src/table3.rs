//! Table III: gate-level area and power comparison (the Synopsys Design
//! Compiler / DesignPower substitute).

use cdfg::Cdfg;
use circuits::{dealer, gcd, vender};
use power::estimate::{gate_level_comparison, EstimateError, GateLevelOptions};

/// One row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Circuit name.
    pub circuit: String,
    /// Control steps allowed.
    pub control_steps: u32,
    /// Gate-equivalent area of the original (traditionally scheduled)
    /// design.
    pub orig_area: f64,
    /// Gate-equivalent area of the power-managed design.
    pub new_area: f64,
    /// `new_area / orig_area`.
    pub area_increase: f64,
    /// Simulated power of the original design (arbitrary units).
    pub orig_power: f64,
    /// Simulated power of the power-managed design.
    pub new_power: f64,
    /// Power reduction in percent.
    pub power_reduction: f64,
}

impl Table3Row {
    /// Renders the row in the paper's layout.
    pub fn render(&self) -> String {
        format!(
            "{:<8} {:>3} {:>8.0} {:>8.0} {:>6.2} {:>8.1} {:>8.1} {:>6.1}",
            self.circuit,
            self.control_steps,
            self.orig_area,
            self.new_area,
            self.area_increase,
            self.orig_power,
            self.new_power,
            self.power_reduction
        )
    }
}

/// Number of random input samples used per circuit (enough for the averages
/// to stabilise while keeping the harness fast).
pub const DEFAULT_SAMPLES: usize = 500;

/// Computes one Table III row.
///
/// # Errors
///
/// Propagates scheduling, binding or simulation failures.
pub fn table3_for(
    cdfg: &Cdfg,
    control_steps: u32,
    samples: usize,
) -> Result<Table3Row, EstimateError> {
    let report =
        gate_level_comparison(cdfg, &GateLevelOptions::new(control_steps).samples(samples))?;
    Ok(Table3Row {
        circuit: cdfg.name().to_owned(),
        control_steps,
        orig_area: report.original_area,
        new_area: report.managed_area,
        area_increase: report.area_ratio,
        orig_power: report.original_power,
        new_power: report.managed_power,
        power_reduction: report.power_reduction_percent,
    })
}

/// Computes the three rows of Table III (dealer at 6 steps, gcd at 7,
/// vender at 6 — the same budgets the paper synthesised).
///
/// # Errors
///
/// Propagates the first failure.
pub fn table3() -> Result<Vec<Table3Row>, EstimateError> {
    Ok(vec![
        table3_for(&dealer(), 6, DEFAULT_SAMPLES)?,
        table3_for(&gcd(), 7, DEFAULT_SAMPLES)?,
        table3_for(&vender(), 6, DEFAULT_SAMPLES)?,
    ])
}

/// Renders Table III in the paper's layout.
pub fn render(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Table III: power estimation at gate level (simulation substitute)\n");
    out.push_str(&format!(
        "{:<8} {:>3} {:>8} {:>8} {:>6} {:>8} {:>8} {:>6}\n",
        "Circuit", "Stp", "AreaOrig", "AreaNew", "Incr", "PwrOrig", "PwrNew", "%"
    ));
    for row in rows {
        out.push_str(&row.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::table2_for;

    #[test]
    fn table3_rows_reproduce_the_paper_shape() {
        let rows = table3().unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            // Every circuit saves power at gate level, and the area penalty
            // stays small (the paper sees 0.98x to 1.11x).
            assert!(row.power_reduction > 1.0, "{}: {}", row.circuit, row.power_reduction);
            assert!(row.power_reduction < 60.0);
            assert!(
                row.area_increase > 0.85 && row.area_increase < 1.4,
                "{}: {}",
                row.circuit,
                row.area_increase
            );
            assert!(row.new_power < row.orig_power);
        }
        // vender remains the biggest winner, as in the paper (32.8% vs 24.5%
        // and 10.0%).
        let vender_row = rows.iter().find(|r| r.circuit == "vender").unwrap();
        let gcd_row = rows.iter().find(|r| r.circuit == "gcd").unwrap();
        assert!(vender_row.power_reduction > gcd_row.power_reduction);
    }

    #[test]
    fn gate_level_savings_track_datapath_savings_from_below() {
        // The paper: gate-level savings are slightly lower than the
        // datapath-only estimate because the controller grows.
        for (cdfg, steps) in [(dealer(), 6u32), (vender(), 6u32)] {
            let datapath_row = table2_for(&cdfg, steps).unwrap();
            let gate_row = table3_for(&cdfg, steps, 300).unwrap();
            assert!(
                gate_row.power_reduction <= datapath_row.power_reduction + 10.0,
                "{}: gate-level {} should not wildly exceed datapath {}",
                cdfg.name(),
                gate_row.power_reduction,
                datapath_row.power_reduction
            );
            assert!(gate_row.power_reduction > 0.0);
        }
    }

    #[test]
    fn render_includes_all_columns() {
        let rows = table3().unwrap();
        let text = render(&rows);
        assert!(text.contains("AreaOrig"));
        assert_eq!(text.lines().count(), rows.len() + 2);
    }
}
