//! Table I: circuit statistics.

use circuits::{all_benchmarks, CircuitStats};

/// One row of Table I.
pub type Table1Row = CircuitStats;

/// Computes Table I for the four benchmark circuits.
pub fn table1() -> Vec<Table1Row> {
    all_benchmarks().iter().map(|b| CircuitStats::of(&b.cdfg)).collect()
}

/// Renders Table I as machine-readable JSON (the `--json` output of the
/// `table1` binary).
pub fn to_json(rows: &[Table1Row]) -> String {
    use engine::report::json_string;
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"circuit\": {}, \"critical_path\": {}, \"mux\": {}, \"comp\": {}, \
             \"add\": {}, \"sub\": {}, \"mul\": {}, \"nodes\": {}}}",
            json_string(&row.name),
            row.critical_path,
            row.counts.mux,
            row.counts.comp,
            row.counts.add,
            row.counts.sub,
            row.counts.mul,
            row.node_count,
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Renders Table I in the paper's layout.
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Table I: circuit statistics\n");
    out.push_str(&format!(
        "{:<8} {:>4} {:>5} {:>5} {:>4} {:>4} {:>4}\n",
        "Circuit", "Path", "MUX", "COMP", "+", "-", "*"
    ));
    for row in rows {
        out.push_str(&row.render_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_exactly() {
        let rows = table1();
        let expect: &[(&str, u32, usize, usize, usize, usize, usize)] = &[
            ("dealer", 4, 3, 3, 2, 1, 0),
            ("gcd", 5, 6, 2, 0, 1, 0),
            ("vender", 5, 6, 3, 3, 3, 2),
            ("cordic", 48, 47, 16, 43, 46, 0),
        ];
        assert_eq!(rows.len(), expect.len());
        for (row, &(name, cp, mux, comp, add, sub, mul)) in rows.iter().zip(expect) {
            assert_eq!(row.name, name);
            assert_eq!(row.critical_path, cp, "{name}");
            assert_eq!(row.counts.mux, mux, "{name}");
            assert_eq!(row.counts.comp, comp, "{name}");
            assert_eq!(row.counts.add, add, "{name}");
            assert_eq!(row.counts.sub, sub, "{name}");
            assert_eq!(row.counts.mul, mul, "{name}");
        }
    }

    #[test]
    fn json_lists_every_circuit_once() {
        let json = to_json(&table1());
        for name in ["dealer", "gcd", "vender", "cordic"] {
            assert_eq!(json.matches(name).count(), 1, "{name}");
        }
        assert!(json.contains("\"critical_path\": 48"));
        assert!(json.starts_with('[') && json.ends_with("]\n"));
    }

    #[test]
    fn render_contains_every_circuit() {
        let text = render(&table1());
        for name in ["dealer", "gcd", "vender", "cordic"] {
            assert!(text.contains(name));
        }
        assert!(text.starts_with("Table I"));
    }
}
