//! Runs the full scenario matrix (circuit × latency × scheduler × pipeline
//! depth × reordering × branch model) over all Table I circuits on the
//! parallel sweep engine.
//!
//! ```text
//! cargo run --release -p experiments --bin sweep [-- --json|--csv]
//!     [--threads N] [--small]
//! ```
//!
//! * `--json` / `--csv` — machine-readable output instead of the pretty
//!   report,
//! * `--threads N` — worker threads (default: one per CPU),
//! * `--small` — the CI smoke matrix (no cordic, no pipelining, fair
//!   probabilities only).

use std::process::exit;

enum Format {
    Pretty,
    Json,
    Csv,
}

fn main() {
    let mut format = Format::Pretty;
    let mut threads = 0usize;
    let mut small = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--csv" => format = Format::Csv,
            "--small" => small = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let (report, cache) = match experiments::sweep::run_full_matrix(small, threads) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            exit(1);
        }
    };

    match format {
        Format::Json => print!("{}", report.to_json()),
        Format::Csv => print!("{}", report.to_csv()),
        Format::Pretty => {
            print!("{}", report.render());
            println!(
                "\n{} scenarios ({} failed); prefix cache: {} computed, {} reused",
                report.records.len(),
                report.failure_count(),
                cache.misses,
                cache.hits
            );
        }
    }
    if report.failure_count() > 0 {
        exit(1);
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("sweep: {problem}");
    eprintln!("usage: sweep [--json|--csv] [--threads N] [--small]");
    exit(2);
}
