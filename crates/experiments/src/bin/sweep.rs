//! Runs the full scenario matrix (circuit × latency × scheduler × pipeline
//! depth × reordering × branch model) over all Table I circuits — or over
//! *generated* workloads — on the parallel sweep engine.
//!
//! ```text
//! cargo run --release -p experiments --bin sweep [-- --json|--csv]
//!     [--threads N] [--small] [--daemon SOCKET]
//!     [--gen family=<name>,seed=<s>,count=<n>[,knob=v...]]...
//! ```
//!
//! * `--json` / `--csv` — machine-readable output instead of the pretty
//!   report,
//! * `--threads N` — worker threads (default: one per CPU),
//! * `--small` — the CI smoke matrix (no cordic, no pipelining, fair
//!   probabilities only),
//! * `--gen SPEC` (repeatable) — replace the paper matrix with synthetic
//!   circuits from `crates/gen`; families are `random-dag`, `mux-tree`,
//!   `dsp-chain` and `cordic`, and each spec can set `width=`, `depth=`,
//!   `mux=` (permille), `taps=` and `iters=`.  Output is byte-identical
//!   across runs and thread counts for fixed specs.
//! * `--daemon SOCKET` — run the same matrix as a job on a `sweepd` daemon
//!   instead of in-process (requires `--json`; the printed report is
//!   byte-identical to the in-process one).

use std::process::exit;

use engine::Scenario;
use gen::GenSpec;
use service::{Client, JobSpec};

enum Format {
    Pretty,
    Json,
    Csv,
}

fn main() {
    let mut format = Format::Pretty;
    let mut threads = 0usize;
    let mut small = false;
    let mut specs: Vec<GenSpec> = Vec::new();
    let mut daemon: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--csv" => format = Format::Csv,
            "--small" => small = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            "--gen" => {
                let text = args.next().unwrap_or_else(|| usage("--gen needs a spec"));
                match GenSpec::parse(&text) {
                    Ok(spec) => specs.push(spec),
                    Err(e) => usage(&e.to_string()),
                }
            }
            "--daemon" => {
                daemon = Some(args.next().unwrap_or_else(|| usage("--daemon needs a socket path")));
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(socket) = daemon {
        if !matches!(format, Format::Json) {
            usage("--daemon requires --json (the daemon streams the JSON report verbatim)");
        }
        run_on_daemon(&socket, small, &specs);
        return;
    }

    let outcome = if specs.is_empty() {
        experiments::sweep::run_full_matrix(small, threads)
    } else {
        if small {
            // --small shapes the paper matrix; silently ignoring it on the
            // generated path would surprise anyone adapting the CI smoke
            // invocation.  Size generated runs with `count=` instead.
            usage("--small only applies to the paper matrix; use --gen ...,count=N to size a generated run");
        }
        experiments::genweep::sweep_generated(&specs, threads)
    };
    let (report, cache) = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            exit(1);
        }
    };

    match format {
        Format::Json => print!("{}", report.to_json()),
        Format::Csv => print!("{}", report.to_csv()),
        Format::Pretty => {
            print!("{}", report.render());
            println!(
                "\n{} scenarios ({} failed); prefix cache: {} computed, {} reused",
                report.records.len(),
                report.failure_count(),
                cache.misses,
                cache.hits
            );
        }
    }
    if report.failure_count() > 0 {
        exit(1);
    }
}

/// Submits the matrix as one fully explicit job to a running `sweepd` and
/// prints the returned report verbatim — byte-identical to the in-process
/// `--json` output.
fn run_on_daemon(socket: &str, small: bool, specs: &[GenSpec]) {
    let (gen, scenarios): (Vec<String>, Vec<Scenario>) = if specs.is_empty() {
        let plan = experiments::sweep::full_matrix_plan(small).unwrap_or_else(|e| {
            eprintln!("sweep failed: {e}");
            exit(1);
        });
        (Vec::new(), plan.scenarios().to_vec())
    } else {
        if small {
            usage("--small only applies to the paper matrix; use --gen ...,count=N to size a generated run");
        }
        let gen: Vec<String> = specs.iter().map(GenSpec::spec_string).collect();
        match service::plans::gen_scenarios(&gen) {
            Ok(scenarios) => (gen, scenarios),
            Err(e) => usage(&e),
        }
    };
    let spec =
        JobSpec::Sweep { gen, scenarios, policy: engine::BudgetPolicy::Fixed, gate_level: None };
    let outcome = Client::connect(socket)
        .and_then(|mut client| client.submit_and_wait(spec))
        .unwrap_or_else(|e| {
            eprintln!("sweep failed: {e}");
            exit(1);
        });
    match (outcome.state, outcome.report) {
        (service::JobState::Done, Some(report)) => {
            print!("{report}");
            if outcome.failures.unwrap_or(0) > 0 {
                exit(1);
            }
        }
        (state, _) => {
            eprintln!(
                "sweep failed: daemon job ended {state}{}",
                outcome.error.map_or_else(String::new, |e| format!(": {e}"))
            );
            exit(1);
        }
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("sweep: {problem}");
    eprintln!(
        "usage: sweep [--json|--csv] [--threads N] [--small] [--daemon SOCKET] \
         [--gen family=<name>,seed=<s>,count=<n>]..."
    );
    exit(2);
}
