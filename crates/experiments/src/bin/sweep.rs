//! Runs the full scenario matrix (circuit × latency × scheduler × pipeline
//! depth × reordering × branch model) over all Table I circuits — or over
//! *generated* workloads — on the parallel sweep engine.
//!
//! ```text
//! cargo run --release -p experiments --bin sweep [-- --json|--csv]
//!     [--threads N] [--small]
//!     [--gen family=<name>,seed=<s>,count=<n>[,knob=v...]]...
//! ```
//!
//! * `--json` / `--csv` — machine-readable output instead of the pretty
//!   report,
//! * `--threads N` — worker threads (default: one per CPU),
//! * `--small` — the CI smoke matrix (no cordic, no pipelining, fair
//!   probabilities only),
//! * `--gen SPEC` (repeatable) — replace the paper matrix with synthetic
//!   circuits from `crates/gen`; families are `random-dag`, `mux-tree`,
//!   `dsp-chain` and `cordic`, and each spec can set `width=`, `depth=`,
//!   `mux=` (permille), `taps=` and `iters=`.  Output is byte-identical
//!   across runs and thread counts for fixed specs.

use std::process::exit;

use gen::GenSpec;

enum Format {
    Pretty,
    Json,
    Csv,
}

fn main() {
    let mut format = Format::Pretty;
    let mut threads = 0usize;
    let mut small = false;
    let mut specs: Vec<GenSpec> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--csv" => format = Format::Csv,
            "--small" => small = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            "--gen" => {
                let text = args.next().unwrap_or_else(|| usage("--gen needs a spec"));
                match GenSpec::parse(&text) {
                    Ok(spec) => specs.push(spec),
                    Err(e) => usage(&e.to_string()),
                }
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let outcome = if specs.is_empty() {
        experiments::sweep::run_full_matrix(small, threads)
    } else {
        if small {
            // --small shapes the paper matrix; silently ignoring it on the
            // generated path would surprise anyone adapting the CI smoke
            // invocation.  Size generated runs with `count=` instead.
            usage("--small only applies to the paper matrix; use --gen ...,count=N to size a generated run");
        }
        experiments::genweep::sweep_generated(&specs, threads)
    };
    let (report, cache) = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            exit(1);
        }
    };

    match format {
        Format::Json => print!("{}", report.to_json()),
        Format::Csv => print!("{}", report.to_csv()),
        Format::Pretty => {
            print!("{}", report.render());
            println!(
                "\n{} scenarios ({} failed); prefix cache: {} computed, {} reused",
                report.records.len(),
                report.failure_count(),
                cache.misses,
                cache.hits
            );
        }
    }
    if report.failure_count() > 0 {
        exit(1);
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("sweep: {problem}");
    eprintln!(
        "usage: sweep [--json|--csv] [--threads N] [--small] \
         [--gen family=<name>,seed=<s>,count=<n>]..."
    );
    exit(2);
}
