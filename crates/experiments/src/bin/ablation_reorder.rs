//! Prints the Section IV-A ablation (multiplexor processing order).
fn main() {
    match experiments::ablation::reorder_ablation() {
        Ok(rows) => print!("{}", experiments::ablation::render_reorder(&rows)),
        Err(e) => {
            eprintln!("ablation failed: {e}");
            std::process::exit(1);
        }
    }
}
