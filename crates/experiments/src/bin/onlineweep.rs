//! Runs the online-repair study: one event stream per generated circuit
//! family through the verified online session, reporting the
//! online-vs-offline savings gap, the repair economy and the
//! bit-identity verdict.
//!
//! ```text
//! cargo run --release -p experiments --bin onlineweep [-- --json]
//!     [--threads N] [--small]
//! ```
//!
//! Exits non-zero if any repaired schedule diverged from a cold
//! recompute by even one byte.

use std::process::exit;

fn main() {
    let mut json = false;
    let mut threads = 0usize;
    let mut small = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--small" => small = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let outcome = match experiments::onlineweep::run_onlineweep(small, threads) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("onlineweep failed: {e}");
            exit(1);
        }
    };

    if json {
        print!("{}", experiments::onlineweep::to_json(&outcome));
    } else {
        print!("{}", experiments::onlineweep::render(&outcome));
    }
    if !outcome.all_identical() {
        eprintln!("onlineweep: a repaired schedule diverged from its cold recompute");
        exit(1);
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("onlineweep: {problem}");
    eprintln!("usage: onlineweep [--json] [--threads N] [--small]");
    exit(2);
}
