//! Runs the sweep-service determinism smoke study: the paper matrix
//! against an in-process daemon — cold, interleaved with a concurrent
//! generated job, and warm — byte-compared with the in-process engine run.
//!
//! ```text
//! cargo run --release -p experiments --bin serviceweep [-- --json]
//!     [--threads N] [--small]
//! ```
//!
//! Exits non-zero if any service-side report differs from the in-process
//! baseline by even one byte, or if the warm re-submission missed the
//! cache at all.

use std::process::exit;

fn main() {
    let mut json = false;
    let mut threads = 0usize;
    let mut small = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--small" => small = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let outcome = match experiments::serviceweep::run_serviceweep(small, threads) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("serviceweep failed: {e}");
            exit(1);
        }
    };

    if json {
        print!("{}", experiments::serviceweep::to_json(&outcome));
    } else {
        print!("{}", experiments::serviceweep::render(&outcome));
    }
    if !outcome.all_identical() {
        eprintln!("serviceweep: a daemon report diverged from the in-process baseline");
        exit(1);
    }
    if outcome.warm_cache.misses > 0 {
        eprintln!(
            "serviceweep: warm re-submission recomputed {} prefixes",
            outcome.warm_cache.misses
        );
        exit(1);
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("serviceweep: {problem}");
    eprintln!("usage: serviceweep [--json] [--threads N] [--small]");
    exit(2);
}
