//! Savings distributions over generated circuit families (the `genweep`
//! study — beyond the paper's four designs).
//!
//! ```text
//! cargo run --release -p experiments --bin genweep [-- --json]
//!     [--seed S] [--count N] [--threads N]
//! ```
//!
//! Generates `N` circuits of every family (`random-dag`, `mux-tree`,
//! `dsp-chain`, `cordic`) from seed `S`, sweeps each at both derived
//! budgets under both schedulers, and prints the per-family reduction
//! distribution (min/median/max, Pareto sizes).  `--json` emits the family
//! aggregates followed by the full engine report.

use std::process::exit;

use experiments::genweep::{default_specs, families_json, genweep, render};

fn main() {
    let mut json = false;
    let mut seed = 42u64;
    let mut count = 25usize;
    let mut threads = 0usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| usage(&format!("{name} needs a non-negative integer")))
        };
        match arg.as_str() {
            "--json" => json = true,
            "--seed" => seed = numeric("--seed"),
            "--count" => count = numeric("--count") as usize,
            "--threads" => threads = numeric("--threads") as usize,
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let outcome = match genweep(&default_specs(seed, count), threads) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("genweep failed: {e}");
            exit(1);
        }
    };

    if json {
        print!("{}", families_json(&outcome.families));
        print!("{}", outcome.report.to_json());
    } else {
        print!("{}", render(&outcome.families));
        println!(
            "\n{} scenarios ({} failed) over {} generated circuits; \
             prefix cache: {} computed, {} reused",
            outcome.report.records.len(),
            outcome.report.failure_count(),
            outcome.families.iter().map(|f| f.circuits).sum::<usize>(),
            outcome.cache.misses,
            outcome.cache.hits
        );
    }
    if outcome.report.failure_count() > 0 {
        exit(1);
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("genweep: {problem}");
    eprintln!("usage: genweep [--json] [--seed S] [--count N] [--threads N]");
    exit(2);
}
