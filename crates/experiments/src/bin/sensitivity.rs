//! Prints the branch-probability sensitivity sweep for every benchmark at
//! its largest Table II control-step budget.  `--json` emits the engine's
//! machine-readable sweep report instead of the pretty tables.
fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    if json {
        print!("{}", experiments::sensitivity::sensitivity_report(10).to_json());
        return;
    }
    for bench in circuits::all_benchmarks() {
        let steps = *bench.control_steps.last().expect("budgets are non-empty");
        match experiments::sensitivity::sweep(&bench.cdfg, steps, 10) {
            Ok(report) => println!("{}", experiments::sensitivity::render(&report)),
            Err(e) => {
                eprintln!("sensitivity sweep failed for {}: {e}", bench.name);
                std::process::exit(1);
            }
        }
    }
}
