//! Prints the Figure 2 reproduction (|a - b| with three control steps,
//! traditional vs power-managed).
fn main() {
    match experiments::figures::figure2() {
        Ok(fig) => print!("{}", experiments::figures::render_figure2(&fig)),
        Err(e) => {
            eprintln!("figure2 failed: {e}");
            std::process::exit(1);
        }
    }
}
