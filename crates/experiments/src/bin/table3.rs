//! Prints Table III (gate-level area and power comparison).  `--json`
//! emits the engine's machine-readable sweep report instead of the pretty
//! table.
fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    if json {
        let report = experiments::table3::table3_report(experiments::table3::DEFAULT_SAMPLES);
        print!("{}", report.to_json());
        return;
    }
    match experiments::table3::table3() {
        Ok(rows) => print!("{}", experiments::table3::render(&rows)),
        Err(e) => {
            eprintln!("table3 failed: {e}");
            std::process::exit(1);
        }
    }
}
