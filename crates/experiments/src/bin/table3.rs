//! Prints Table III (gate-level area and power comparison).
fn main() {
    match experiments::table3::table3() {
        Ok(rows) => print!("{}", experiments::table3::render(&rows)),
        Err(e) => {
            eprintln!("table3 failed: {e}");
            std::process::exit(1);
        }
    }
}
