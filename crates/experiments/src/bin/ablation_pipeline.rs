//! Prints the Section IV-B ablation (pipelining as a power-management
//! enabler).
fn main() {
    match experiments::ablation::pipeline_ablation() {
        Ok(rows) => print!("{}", experiments::ablation::render_pipeline(&rows)),
        Err(e) => {
            eprintln!("ablation failed: {e}");
            std::process::exit(1);
        }
    }
}
