//! Prints the Figure 1 reproduction (|a - b| with two control steps).
fn main() {
    match experiments::figures::figure1() {
        Ok(fig) => print!("{}", experiments::figures::render_figure1(&fig)),
        Err(e) => {
            eprintln!("figure1 failed: {e}");
            std::process::exit(1);
        }
    }
}
