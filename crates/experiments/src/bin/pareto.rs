//! Walks every circuit across its full feasible control-step budget range
//! and emits the non-dominated latency–power front under the scaled-delay
//! (DVS-style) energy model — the continuous version of Table II.
//!
//! ```text
//! cargo run --release -p experiments --bin pareto [-- --json|--csv]
//!     [--threads N] [--small] [--span N]
//!     [--policy fixed|full-range|pareto] [--scaling none|linear|quadratic]
//!     [--voltage global-none|global-linear|global-quadratic|per-op-2|per-op-3|per-op-5]
//!     [--gen family=<name>,seed=<s>,count=<n>[,knob=v...]]...
//! ```
//!
//! * `--json` / `--csv` — machine-readable output instead of the pretty
//!   report (byte-identical across reruns and thread counts),
//! * `--threads N` — worker threads (default: one per CPU),
//! * `--small` — CI smoke configuration (no cordic, span 4),
//! * `--span N` — walk each circuit to `critical path + N` steps
//!   (default 8; 4 with `--small`),
//! * `--policy` — budget policy (default `pareto`: only front points;
//!   `full-range` keeps every point, `fixed` visits the paper budgets),
//! * `--scaling` — scaled-delay energy law (default `quadratic`; shorthand
//!   for `--voltage global-<law>`),
//! * `--voltage` — the voltage policy: a global law, or a per-op preset
//!   (`per-op-N` schedules each operation at its own supply level),
//! * `--gen SPEC` (repeatable) — explore generated circuits instead of the
//!   paper's four,
//! * `--daemon SOCKET` — run the exploration as a job on a `sweepd` daemon
//!   instead of in-process (requires `--json`; the printed report is
//!   byte-identical to the in-process one).

use std::process::exit;

use engine::{BudgetCeiling, BudgetPolicy, ExploreRequest, VoltagePolicy};
use gen::GenSpec;
use power::DelayScaling;
use service::{Client, JobSpec};

enum Format {
    Pretty,
    Json,
    Csv,
}

fn main() {
    let mut format = Format::Pretty;
    let mut threads = 0usize;
    let mut small = false;
    let mut span: Option<u32> = None;
    let mut policy = BudgetPolicy::Pareto;
    let mut voltage = VoltagePolicy::Global(DelayScaling::Quadratic);
    let mut specs: Vec<GenSpec> = Vec::new();
    let mut daemon: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--csv" => format = Format::Csv,
            "--small" => small = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            "--span" => {
                span = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--span needs a non-negative integer")),
                );
            }
            "--policy" => {
                let text = args.next().unwrap_or_else(|| usage("--policy needs a value"));
                policy = BudgetPolicy::parse(&text)
                    .unwrap_or_else(|| usage(&format!("unknown policy `{text}`")));
            }
            "--scaling" => {
                let text = args.next().unwrap_or_else(|| usage("--scaling needs a value"));
                let law = DelayScaling::parse(&text)
                    .unwrap_or_else(|| usage(&format!("unknown scaling `{text}`")));
                voltage = VoltagePolicy::Global(law);
            }
            "--voltage" => {
                let text = args.next().unwrap_or_else(|| usage("--voltage needs a value"));
                voltage = VoltagePolicy::parse(&text)
                    .unwrap_or_else(|| usage(&format!("unknown voltage policy `{text}`")));
            }
            "--gen" => {
                let text = args.next().unwrap_or_else(|| usage("--gen needs a spec"));
                match GenSpec::parse(&text) {
                    Ok(spec) => specs.push(spec),
                    Err(e) => usage(&e.to_string()),
                }
            }
            "--daemon" => {
                daemon = Some(args.next().unwrap_or_else(|| usage("--daemon needs a socket path")));
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let span = span.unwrap_or(if small { 4 } else { 8 });

    if let Some(socket) = daemon {
        if !matches!(format, Format::Json) {
            usage("--daemon requires --json (the daemon streams the JSON report verbatim)");
        }
        run_on_daemon(&socket, small, &specs, span, policy, voltage);
        return;
    }

    let options = experiments::pareto::default_options(span).policy(policy).voltage(voltage);
    let outcome = if specs.is_empty() {
        experiments::pareto::explore_paper(small, &options, threads)
    } else {
        if small {
            usage("--small only applies to the paper circuits; size generated runs with count=");
        }
        experiments::pareto::explore_generated(&specs, &options, threads)
    };
    let report = match outcome {
        Ok(report) => report,
        Err(e) => {
            eprintln!("pareto exploration failed: {e}");
            exit(1);
        }
    };

    match format {
        Format::Json => print!("{}", report.to_json()),
        Format::Csv => print!("{}", report.to_csv()),
        Format::Pretty => print!("{}", report.render()),
    }
    if report.failure_count() > 0 {
        exit(1);
    }
}

/// Submits the exploration as one fully explicit job to a running `sweepd`
/// and prints the returned report verbatim — byte-identical to the
/// in-process `--json` output.
fn run_on_daemon(
    socket: &str,
    small: bool,
    specs: &[GenSpec],
    span: u32,
    policy: BudgetPolicy,
    voltage: VoltagePolicy,
) {
    let (gen, requests): (Vec<String>, Vec<ExploreRequest>) = if specs.is_empty() {
        (Vec::new(), experiments::pareto::paper_requests(small))
    } else {
        if small {
            usage("--small only applies to the paper circuits; size generated runs with count=");
        }
        let gen: Vec<String> = specs.iter().map(GenSpec::spec_string).collect();
        match service::plans::gen_requests(&gen) {
            Ok(requests) => (gen, requests),
            Err(e) => usage(&e),
        }
    };
    let spec = JobSpec::Explore {
        gen,
        requests,
        policy,
        ceiling: BudgetCeiling::CriticalPathPlus(span),
        voltage,
        branch_model: engine::BranchModel::Fair,
    };
    let outcome = Client::connect(socket)
        .and_then(|mut client| client.submit_and_wait(spec))
        .unwrap_or_else(|e| {
            eprintln!("pareto exploration failed: {e}");
            exit(1);
        });
    match (outcome.state, outcome.report) {
        (service::JobState::Done, Some(report)) => {
            print!("{report}");
            if outcome.failures.unwrap_or(0) > 0 {
                exit(1);
            }
        }
        (state, _) => {
            eprintln!(
                "pareto exploration failed: daemon job ended {state}{}",
                outcome.error.map_or_else(String::new, |e| format!(": {e}"))
            );
            exit(1);
        }
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("pareto: {problem}");
    eprintln!(
        "usage: pareto [--json|--csv] [--threads N] [--small] [--span N] [--daemon SOCKET] \
         [--policy fixed|full-range|pareto] [--scaling none|linear|quadratic] \
         [--voltage global-none|global-linear|global-quadratic|per-op-2|per-op-3|per-op-5] \
         [--gen family=<name>,seed=<s>,count=<n>]..."
    );
    exit(2);
}
