//! Prints Table II (expected operation executions and datapath power
//! reduction under power management).
fn main() {
    match experiments::table2::table2() {
        Ok(rows) => print!("{}", experiments::table2::render(&rows)),
        Err(e) => {
            eprintln!("table2 failed: {e}");
            std::process::exit(1);
        }
    }
}
