//! Prints Table II (expected operation executions and datapath power
//! reduction under power management).  `--json` emits the engine's
//! machine-readable sweep report instead of the pretty table.
fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    if json {
        print!("{}", experiments::table2::table2_report().to_json());
        return;
    }
    match experiments::table2::table2() {
        Ok(rows) => print!("{}", experiments::table2::render(&rows)),
        Err(e) => {
            eprintln!("table2 failed: {e}");
            std::process::exit(1);
        }
    }
}
