//! Prints Table I (circuit statistics).  `--json` emits the
//! machine-readable report instead of the pretty table.
fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let rows = experiments::table1::table1();
    if json {
        print!("{}", experiments::table1::to_json(&rows));
    } else {
        print!("{}", experiments::table1::render(&rows));
    }
}
