//! Prints Table I (circuit statistics).
fn main() {
    let rows = experiments::table1::table1();
    print!("{}", experiments::table1::render(&rows));
}
