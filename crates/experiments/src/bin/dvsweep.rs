//! Fine-grained DVS study: voltage-policy comparison over the paper
//! circuits plus the measured optimality gap of the greedy
//! slack-distribution kernel against the exact reference.
//!
//! ```text
//! cargo run --release -p experiments --bin dvsweep [-- --json]
//!     [--threads N] [--small]
//! ```
//!
//! * `--json` — machine-readable output instead of the pretty tables
//!   (byte-identical across reruns and thread counts),
//! * `--threads N` — worker threads for the policy explorations
//!   (default: one per CPU; the gap sweep is sequential either way),
//! * `--small` — CI smoke configuration (no cordic, one preset, narrow
//!   budget walk).

use std::process::exit;

fn main() {
    let mut json = false;
    let mut threads = 0usize;
    let mut small = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--small" => small = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let outcome = match experiments::dvsweep::run_dvsweep(small, threads) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("dvsweep failed: {e}");
            exit(1);
        }
    };
    if json {
        print!("{}", experiments::dvsweep::to_json(&outcome));
    } else {
        print!("{}", experiments::dvsweep::render(&outcome));
    }
    if !outcome.kernel_is_admissible() {
        eprintln!("dvsweep: greedy kernel fell below the exact minimum somewhere");
        exit(1);
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("dvsweep: {problem}");
    eprintln!("usage: dvsweep [--json] [--threads N] [--small]");
    exit(2);
}
