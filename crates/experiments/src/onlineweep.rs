//! The `onlineweep` study: online incremental repair vs. an offline
//! power manager, across every generated circuit family.
//!
//! One event stream per [`gen::Family`] runs through the verified online
//! session ([`engine::online::run_stream_verified`]): every repaired
//! schedule is byte-compared against a cold recompute at the final
//! parameters, and every repair's touched-node count is set against a
//! full recompute's.  The study then reports, per family:
//!
//! * the **savings gap** — how much energy the online manager (which
//!   repairs its schedule at every budget/scaling change) saves over an
//!   offline one that keeps each circuit's arrival schedule frozen,
//! * the **repair economy** — zero-work events (schedule-memo hits),
//!   full-recompute fallbacks (first sights and budgets loosened past
//!   the critical path), and the median touched-nodes ratio,
//! * the **identity verdict** — whether a single repaired schedule
//!   diverged from cold bytes (the contract says never).
//!
//! The four family streams are independent, so they run on the engine's
//! deterministic thread pool; results are byte-identical at any thread
//! count.

use std::fmt::Write as _;

use engine::online::{run_stream_verified, VerifiedOutcome};
use engine::pool::{parallel_map_controlled, MapControl};
use engine::report::json_number;
use gen::{Family, StreamSpec};

use crate::ExperimentError;

/// One family stream's results.
#[derive(Debug, Clone)]
pub struct OnlineweepRow {
    /// The circuit family the stream draws from.
    pub family: Family,
    /// The lossless stream spec.
    pub spec: String,
    /// Events in the stream.
    pub events: usize,
    /// Events whose outcome was an error (expected 0 — the generator
    /// never walks a budget below the critical path).
    pub errors: usize,
    /// Aggregate online-vs-offline savings gap in percent.
    pub savings_gap: f64,
    /// Events that forced the offline baseline to recompute.
    pub offline_recomputes: usize,
    /// Repairs served without touching a node (memo hits, scaling-only
    /// and retire events).
    pub zero_work_events: usize,
    /// Repairs that fell back to a full recompute.
    pub full_recomputes: usize,
    /// Median per-event `nodes_touched / full recompute nodes_touched`.
    pub median_touched_ratio: f64,
    /// Whether every repaired schedule matched cold bytes.
    pub cold_identical: bool,
    /// Events whose schedule diverged from cold (0 when identical).
    pub mismatches: usize,
}

/// The whole study's results, one row per family.
#[derive(Debug, Clone)]
pub struct OnlineweepOutcome {
    /// Per-family rows, in [`Family::ALL`] order.
    pub rows: Vec<OnlineweepRow>,
}

impl OnlineweepOutcome {
    /// Whether every stream kept the bit-identity contract.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|row| row.cold_identical)
    }

    /// The largest per-family median touched-nodes ratio.
    pub fn worst_median_ratio(&self) -> f64 {
        self.rows.iter().map(|row| row.median_touched_ratio).fold(0.0, f64::max)
    }
}

/// The study's stream spec for one family (`small` selects the CI smoke
/// sizes).  Churn and rescale are enabled so all four event kinds occur;
/// the budget walk still dominates, as it would under a real power
/// manager.
fn family_spec(family: Family, small: bool) -> Result<StreamSpec, ExperimentError> {
    let (count, events) = if small { (2, 40) } else { (4, 400) };
    let text = format!(
        "family={},seed=17,count={count};events={events},eseed=29,churn=120,rescale=150",
        family.name()
    );
    StreamSpec::parse(&text).map_err(|e| ExperimentError {
        context: format!("onlineweep {family} stream"),
        message: e.to_string(),
    })
}

/// Runs the study (see the module docs).  `small` selects the CI smoke
/// sizes; `threads` sizes the pool the four family streams run on
/// (0 = all cores).
///
/// # Errors
///
/// Propagates stream-spec failures; identity *mismatches* are reported in
/// the outcome, not as errors.
pub fn run_onlineweep(small: bool, threads: usize) -> Result<OnlineweepOutcome, ExperimentError> {
    let specs = Family::ALL
        .into_iter()
        .map(|family| family_spec(family, small))
        .collect::<Result<Vec<_>, _>>()?;
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    let outcomes = parallel_map_controlled(
        specs,
        threads,
        &|spec: StreamSpec| run_stream_verified(&spec).map(|v| (spec.spec_string(), v)),
        MapControl::default(),
    )
    .expect("a map without a cancel flag cannot be cancelled");

    let mut rows = Vec::with_capacity(outcomes.len());
    for (family, outcome) in Family::ALL.into_iter().zip(outcomes) {
        let (spec, verified): (String, VerifiedOutcome) = outcome.map_err(|e| ExperimentError {
            context: format!("onlineweep {family} stream"),
            message: e.to_string(),
        })?;
        let summary = verified.report.summary;
        rows.push(OnlineweepRow {
            family,
            spec,
            events: summary.events,
            errors: summary.errors,
            savings_gap: summary.savings_gap,
            offline_recomputes: summary.offline_recomputes,
            zero_work_events: summary.zero_work_events,
            full_recomputes: summary.full_recomputes,
            median_touched_ratio: verified.median_touched_ratio,
            cold_identical: verified.cold_identical,
            mismatches: verified.mismatches,
        });
    }
    Ok(OnlineweepOutcome { rows })
}

/// Renders the study as the usual fixed-width table.
pub fn render(outcome: &OnlineweepOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<11} {:>6} {:>6} {:>9} {:>9} {:>9} {:>8} {:>9}  identity",
        "family", "events", "errors", "gap %", "zero-work", "full-rec", "ratio", "off-rec"
    );
    for row in &outcome.rows {
        let _ = writeln!(
            out,
            "{:<11} {:>6} {:>6} {:>9.2} {:>9} {:>9} {:>8.3} {:>9}  {}",
            row.family.name(),
            row.events,
            row.errors,
            row.savings_gap,
            row.zero_work_events,
            row.full_recomputes,
            row.median_touched_ratio,
            row.offline_recomputes,
            if row.cold_identical {
                "bit-identical".to_owned()
            } else {
                format!("MISMATCH ({})", row.mismatches)
            }
        );
    }
    out
}

/// Renders the study as JSON (stable key order, one row per line).
pub fn to_json(outcome: &OnlineweepOutcome) -> String {
    let mut out = String::from("{\n  \"rows\": [\n");
    for (i, row) in outcome.rows.iter().enumerate() {
        let comma = if i + 1 == outcome.rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"family\": \"{}\", \"events\": {}, \"errors\": {}, \"savings_gap\": {}, \
             \"zero_work_events\": {}, \"full_recomputes\": {}, \"median_touched_ratio\": {}, \
             \"offline_recomputes\": {}, \"cold_identical\": {}, \"mismatches\": {}}}{comma}",
            row.family.name(),
            row.events,
            row.errors,
            json_number(row.savings_gap),
            row.zero_work_events,
            row.full_recomputes,
            json_number(row.median_touched_ratio),
            row.offline_recomputes,
            row.cold_identical,
            row.mismatches,
        );
    }
    let _ = writeln!(out, "  ],\n  \"all_identical\": {}\n}}", outcome.all_identical());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_is_identical_and_mostly_zero_work() {
        let outcome = run_onlineweep(true, 2).unwrap();
        assert_eq!(outcome.rows.len(), Family::ALL.len());
        assert!(outcome.all_identical(), "{outcome:?}");
        for row in &outcome.rows {
            assert_eq!(row.errors, 0, "{row:?}");
            assert!(row.zero_work_events > 0, "{row:?}");
        }
        let text = render(&outcome);
        assert!(text.contains("bit-identical"));
        assert!(!text.contains("MISMATCH"));
        assert!(to_json(&outcome).contains("\"all_identical\": true"));
    }

    #[test]
    fn thread_counts_do_not_change_the_rendered_bytes() {
        let solo = run_onlineweep(true, 1).unwrap();
        let wide = run_onlineweep(true, 4).unwrap();
        assert_eq!(to_json(&solo), to_json(&wide));
        assert_eq!(render(&solo), render(&wide));
    }
}
