//! Branch-probability sensitivity analysis.
//!
//! Table II assumes "each multiplexor has equal probability of selecting any
//! of its inputs".  Real workloads are rarely that balanced, so this module
//! sweeps a common select probability across all managed multiplexors and
//! reports how the datapath savings respond — the savings are linear in each
//! probability, bounded by the all-zero / all-one extremes, and maximal
//! savings do *not* necessarily occur at the fair point (they do only when
//! the two branches cost the same).

use cdfg::Cdfg;
use pmsched::{
    power_manage, OpWeights, PowerManageError, PowerManagementOptions, SelectProbabilities,
};

/// Savings at one swept probability point.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityPoint {
    /// Probability that every managed multiplexor selects its 1-input.
    pub p_select_one: f64,
    /// Datapath power reduction in percent at that probability.
    pub power_reduction: f64,
}

/// The sweep result for one circuit at one control-step budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// Circuit name.
    pub circuit: String,
    /// Control steps used.
    pub control_steps: u32,
    /// Savings at each swept probability (ascending in probability).
    pub points: Vec<SensitivityPoint>,
}

impl SensitivityReport {
    /// The swept probability with the highest savings.
    pub fn best(&self) -> &SensitivityPoint {
        self.points
            .iter()
            .max_by(|a, b| a.power_reduction.total_cmp(&b.power_reduction))
            .expect("sweep is never empty")
    }

    /// The savings at the fair (0.5) point, if it was swept.
    pub fn fair(&self) -> Option<&SensitivityPoint> {
        self.points.iter().find(|p| (p.p_select_one - 0.5).abs() < 1e-9)
    }
}

/// Sweeps the select probability of every multiplexor of `cdfg` from 0 to 1
/// in `steps` increments and records the datapath savings at each point.
///
/// # Errors
///
/// Propagates scheduling failures from [`power_manage`].
pub fn sweep(
    cdfg: &Cdfg,
    control_steps: u32,
    steps: usize,
) -> Result<SensitivityReport, PowerManageError> {
    let result = power_manage(cdfg, &PowerManagementOptions::with_latency(control_steps))?;
    let weights = OpWeights::paper_power();
    let muxes = result.cdfg().mux_nodes();
    let mut points = Vec::with_capacity(steps + 1);
    for i in 0..=steps {
        let p = i as f64 / steps as f64;
        let mut probs = SelectProbabilities::fair();
        for &mux in &muxes {
            probs.set(mux, p);
        }
        let savings = result.savings_with(&probs, &weights);
        points
            .push(SensitivityPoint { p_select_one: p, power_reduction: savings.reduction_percent });
    }
    Ok(SensitivityReport { circuit: cdfg.name().to_owned(), control_steps, points })
}

/// Renders a sweep as a small text table.
pub fn render(report: &SensitivityReport) -> String {
    let mut out = format!(
        "Sensitivity of datapath savings to branch probability ({} @ {} steps)\n",
        report.circuit, report.control_steps
    );
    out.push_str(&format!("{:>6} {:>10}\n", "P(1)", "Red.(%)"));
    for point in &report.points {
        out.push_str(&format!("{:>6.2} {:>10.2}\n", point.p_select_one, point.power_reduction));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{abs_diff, vender};

    #[test]
    fn abs_diff_savings_are_flat_in_probability() {
        // Both branches of |a - b| cost the same (one subtraction), so the
        // expected savings are independent of the branch probability.
        let report = sweep(&abs_diff(), 3, 10).unwrap();
        let first = report.points.first().unwrap().power_reduction;
        for point in &report.points {
            assert!((point.power_reduction - first).abs() < 1e-9);
        }
        assert!(report.fair().is_some());
    }

    #[test]
    fn vender_savings_peak_where_the_multipliers_are_skipped() {
        // vender's expensive multipliers sit on the 1-branches of their
        // multiplexors, so savings grow as the selects move towards 0 (the
        // multipliers are skipped more often).
        let report = sweep(&vender(), 6, 10).unwrap();
        let at_zero = report.points.first().unwrap().power_reduction;
        let at_one = report.points.last().unwrap().power_reduction;
        let fair = report.fair().unwrap().power_reduction;
        assert!(at_zero > at_one, "skipping multipliers saves more: {at_zero} vs {at_one}");
        assert!(fair > at_one && fair < at_zero, "fair point sits between the extremes");
        assert_eq!(report.best().p_select_one, 0.0);
        assert!(report.best().power_reduction > 40.0);
    }

    #[test]
    fn render_lists_every_point() {
        let report = sweep(&abs_diff(), 3, 4).unwrap();
        let text = render(&report);
        assert_eq!(text.lines().count(), 2 + report.points.len());
        assert!(text.contains("abs_diff"));
    }
}
