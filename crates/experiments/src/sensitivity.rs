//! Branch-probability sensitivity analysis.
//!
//! Table II assumes "each multiplexor has equal probability of selecting any
//! of its inputs".  Real workloads are rarely that balanced, so this module
//! sweeps a common select probability across all managed multiplexors and
//! reports how the datapath savings respond — the savings are linear in each
//! probability, bounded by the all-zero / all-one extremes, and maximal
//! savings do *not* necessarily occur at the fair point (they do only when
//! the two branches cost the same).

use std::collections::BTreeSet;

use cdfg::Cdfg;
use engine::{BranchModel, Engine, Scenario, SweepPlan, SweepReport};

use crate::{metrics_for, ExperimentError};

/// Savings at one swept probability point.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityPoint {
    /// Probability that every managed multiplexor selects its 1-input.
    pub p_select_one: f64,
    /// Datapath power reduction in percent at that probability.
    pub power_reduction: f64,
}

/// The sweep result for one circuit at one control-step budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// Circuit name.
    pub circuit: String,
    /// Control steps used.
    pub control_steps: u32,
    /// Savings at each swept probability (ascending in probability).
    pub points: Vec<SensitivityPoint>,
}

impl SensitivityReport {
    /// The swept probability with the highest savings.
    pub fn best(&self) -> &SensitivityPoint {
        self.points
            .iter()
            .max_by(|a, b| a.power_reduction.total_cmp(&b.power_reduction))
            .expect("sweep is never empty")
    }

    /// The savings at the fair (0.5) point, if it was swept.
    pub fn fair(&self) -> Option<&SensitivityPoint> {
        self.points.iter().find(|p| (p.p_select_one - 0.5).abs() < 1e-9)
    }
}

/// The branch models of a `steps`-increment probability sweep: permille
/// values from 0 to 1000, deduplicated and ascending.
fn sweep_models(steps: usize) -> Vec<BranchModel> {
    let steps = steps.max(1);
    let unique: BTreeSet<BranchModel> =
        (0..=steps).map(|i| BranchModel::biased(((i * 1000) / steps) as u16)).collect();
    unique.into_iter().collect()
}

/// Sweeps the select probability of every multiplexor of `cdfg` from 0 to 1
/// in `steps` increments (permille resolution) and records the datapath
/// savings at each point.  All probability points share one engine-cached
/// schedule: the scheduling prefix is computed exactly once.
///
/// Probabilities are rounded down to permille and duplicate points are
/// merged, so the report holds `steps + 1` points only when `steps` divides
/// 1000 (at most 1001 points otherwise).
///
/// # Errors
///
/// Propagates scheduling failures from the engine.
pub fn sweep(
    cdfg: &Cdfg,
    control_steps: u32,
    steps: usize,
) -> Result<SensitivityReport, ExperimentError> {
    let mut engine = Engine::new();
    engine.register_circuit(cdfg.clone());
    let models = sweep_models(steps);
    let plan = SweepPlan::builder()
        .case(cdfg.name(), control_steps)
        .branch_models(models.clone())
        .build()?;
    let report = engine.run(&plan, 0);

    let mut points = Vec::with_capacity(models.len());
    for model in models {
        let scenario = Scenario::new(cdfg.name(), control_steps).branch_model(model);
        let metrics = metrics_for(&report, &scenario)?;
        points.push(SensitivityPoint {
            p_select_one: model.p_select_one(),
            power_reduction: metrics.power_reduction,
        });
    }
    Ok(SensitivityReport { circuit: cdfg.name().to_owned(), control_steps, points })
}

/// The engine plan behind the `sensitivity` binary: every benchmark at its
/// largest Table II budget, with the full probability sweep as the
/// branch-model dimension.
pub fn sensitivity_plan(steps: usize) -> SweepPlan {
    let mut builder = SweepPlan::builder();
    for bench in circuits::all_benchmarks() {
        let &budget = bench.control_steps.last().expect("budgets are non-empty");
        builder = builder.case(bench.name.as_str(), budget);
    }
    builder
        .branch_models(sweep_models(steps))
        .build()
        .expect("sensitivity plan is non-empty and valid")
}

/// Runs [`sensitivity_plan`] through the engine (the `--json` output of the
/// `sensitivity` binary).
pub fn sensitivity_report(steps: usize) -> SweepReport {
    Engine::new().run(&sensitivity_plan(steps), 0)
}

/// Renders a sweep as a small text table.
pub fn render(report: &SensitivityReport) -> String {
    let mut out = format!(
        "Sensitivity of datapath savings to branch probability ({} @ {} steps)\n",
        report.circuit, report.control_steps
    );
    out.push_str(&format!("{:>6} {:>10}\n", "P(1)", "Red.(%)"));
    for point in &report.points {
        out.push_str(&format!("{:>6.2} {:>10.2}\n", point.p_select_one, point.power_reduction));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{abs_diff, vender};

    #[test]
    fn abs_diff_savings_are_flat_in_probability() {
        // Both branches of |a - b| cost the same (one subtraction), so the
        // expected savings are independent of the branch probability.
        let report = sweep(&abs_diff(), 3, 10).unwrap();
        let first = report.points.first().unwrap().power_reduction;
        for point in &report.points {
            assert!((point.power_reduction - first).abs() < 1e-9);
        }
        assert!(report.fair().is_some());
    }

    #[test]
    fn vender_savings_peak_where_the_multipliers_are_skipped() {
        // vender's expensive multipliers sit on the 1-branches of their
        // multiplexors, so savings grow as the selects move towards 0 (the
        // multipliers are skipped more often).
        let report = sweep(&vender(), 6, 10).unwrap();
        let at_zero = report.points.first().unwrap().power_reduction;
        let at_one = report.points.last().unwrap().power_reduction;
        let fair = report.fair().unwrap().power_reduction;
        assert!(at_zero > at_one, "skipping multipliers saves more: {at_zero} vs {at_one}");
        assert!(fair > at_one && fair < at_zero, "fair point sits between the extremes");
        assert_eq!(report.best().p_select_one, 0.0);
        assert!(report.best().power_reduction > 40.0);
    }

    #[test]
    fn render_lists_every_point() {
        let report = sweep(&abs_diff(), 3, 4).unwrap();
        let text = render(&report);
        assert_eq!(text.lines().count(), 2 + report.points.len());
        assert!(text.contains("abs_diff"));
    }
}
