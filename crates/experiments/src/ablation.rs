//! Ablations for the design choices of Section IV: multiplexor reordering
//! (IV-A) and pipelining (IV-B), plus the choice of final scheduler.

use circuits::all_benchmarks;
use engine::{Engine, Scenario, SweepPlan};
use pmsched::{power_manage, MuxOrder, PowerManagementOptions};

use crate::{metrics_for, ExperimentError};

/// The (circuit, control steps) cases of the Section IV-A reorder ablation.
const REORDER_CASES: [(&str, u32); 3] = [("dealer", 5), ("gcd", 6), ("vender", 6)];

/// The (circuit, throughput steps) cases of the Section IV-B pipeline
/// ablation: each circuit at its critical-path throughput.
const PIPELINE_CASES: [(&str, u32); 3] = [("dealer", 4), ("gcd", 5), ("vender", 5)];

/// The effect of one multiplexor processing order on one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderRow {
    /// Circuit name.
    pub circuit: String,
    /// Control steps.
    pub control_steps: u32,
    /// Ordering strategy label.
    pub order: String,
    /// Number of power-managed multiplexors.
    pub pm_muxes: usize,
    /// Datapath power reduction in percent.
    pub power_reduction: f64,
}

/// Runs the mux-ordering ablation (Section IV-A) over the non-trivial
/// benchmarks: outputs-first (the paper's default), inputs-first,
/// savings-driven, and the best order found by the reordering search.
///
/// The two scenario-expressible rows (default order and reordering search)
/// run through the sweep engine; the inputs-first and by-savings baselines
/// use explicit mux orders the scenario matrix does not span.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn reorder_ablation() -> Result<Vec<ReorderRow>, ExperimentError> {
    let mut builder = SweepPlan::builder();
    for (circuit, steps) in REORDER_CASES {
        builder = builder.case(circuit, steps);
    }
    let plan = builder.reorder([false, true]).build()?;
    let engine = Engine::new();
    let report = engine.run(&plan, 0);

    let mut rows = Vec::new();
    for (circuit, steps) in REORDER_CASES {
        let default = metrics_for(&report, &Scenario::new(circuit, steps))?;
        rows.push(ReorderRow {
            circuit: circuit.to_owned(),
            control_steps: steps,
            order: "outputs-first".to_owned(),
            pm_muxes: default.pm_muxes,
            power_reduction: default.power_reduction,
        });
        let cdfg = engine.circuit(circuit).expect("registry circuit").clone();
        for (label, order) in
            [("inputs-first", MuxOrder::InputsFirst), ("by-savings", MuxOrder::BySavings)]
        {
            let result =
                power_manage(&cdfg, &PowerManagementOptions::with_latency(steps).mux_order(order))
                    .map_err(|e| ExperimentError {
                        context: format!("{circuit}@{steps} {label}"),
                        message: e.to_string(),
                    })?;
            rows.push(ReorderRow {
                circuit: circuit.to_owned(),
                control_steps: steps,
                order: label.to_owned(),
                pm_muxes: result.managed_mux_count(),
                power_reduction: result.savings().reduction_percent,
            });
        }
        let best = metrics_for(&report, &Scenario::new(circuit, steps).reorder(true))?;
        rows.push(ReorderRow {
            circuit: circuit.to_owned(),
            control_steps: steps,
            order: "reordered (best)".to_owned(),
            pm_muxes: best.pm_muxes,
            power_reduction: best.power_reduction,
        });
    }
    Ok(rows)
}

/// The effect of pipeline depth on one circuit under a tight throughput
/// constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRow {
    /// Circuit name.
    pub circuit: String,
    /// Throughput constraint (control steps between samples).
    pub throughput_steps: u32,
    /// Pipeline stages.
    pub stages: u32,
    /// Control steps available to one sample after pipelining.
    pub effective_steps: u32,
    /// Power-managed multiplexors.
    pub pm_muxes: usize,
    /// Datapath power reduction in percent.
    pub power_reduction: f64,
    /// Estimated extra pipeline registers.
    pub extra_registers: usize,
}

/// Runs the pipelining ablation (Section IV-B) through the sweep engine:
/// each circuit at its critical-path throughput with 1, 2 and 3 pipeline
/// stages.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn pipeline_ablation() -> Result<Vec<PipelineRow>, ExperimentError> {
    let mut builder = SweepPlan::builder();
    for (circuit, steps) in PIPELINE_CASES {
        builder = builder.case(circuit, steps);
    }
    let plan = builder.pipeline_depths([1, 2, 3]).build()?;
    let report = Engine::new().run(&plan, 0);

    let mut rows = Vec::new();
    for (circuit, steps) in PIPELINE_CASES {
        for stages in 1..=3u32 {
            let metrics =
                metrics_for(&report, &Scenario::new(circuit, steps).pipeline_depth(stages))?;
            rows.push(PipelineRow {
                circuit: circuit.to_owned(),
                throughput_steps: steps,
                stages,
                effective_steps: metrics.effective_latency,
                pm_muxes: metrics.pm_muxes,
                power_reduction: metrics.power_reduction,
                extra_registers: metrics.extra_registers,
            });
        }
    }
    Ok(rows)
}

/// Renders the reorder ablation as text.
pub fn render_reorder(rows: &[ReorderRow]) -> String {
    let mut out = String::from("Ablation (Section IV-A): multiplexor processing order\n");
    out.push_str(&format!(
        "{:<8} {:>3} {:<18} {:>5} {:>8}\n",
        "Circuit", "Stp", "Order", "Muxs", "Red.(%)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>3} {:<18} {:>5} {:>8.2}\n",
            r.circuit, r.control_steps, r.order, r.pm_muxes, r.power_reduction
        ));
    }
    out
}

/// Renders the pipeline ablation as text.
pub fn render_pipeline(rows: &[PipelineRow]) -> String {
    let mut out =
        String::from("Ablation (Section IV-B): pipelining as a power-management enabler\n");
    out.push_str(&format!(
        "{:<8} {:>4} {:>6} {:>6} {:>5} {:>8} {:>6}\n",
        "Circuit", "Thru", "Stages", "Steps", "Muxs", "Red.(%)", "Regs"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>4} {:>6} {:>6} {:>5} {:>8.2} {:>6}\n",
            r.circuit,
            r.throughput_steps,
            r.stages,
            r.effective_steps,
            r.pm_muxes,
            r.power_reduction,
            r.extra_registers
        ));
    }
    out
}

/// A quick sanity ablation across all benchmarks: the power-managed run
/// never does worse than the baseline at the same constraints.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn never_worse_than_baseline() -> Result<bool, ExperimentError> {
    let mut builder = SweepPlan::builder();
    for bench in all_benchmarks() {
        for &steps in &bench.control_steps {
            builder = builder.case(bench.name.as_str(), steps);
        }
    }
    let report = Engine::new().run(&builder.build()?, 0);
    for record in &report.records {
        let metrics = record
            .metrics()
            .ok_or_else(|| ExperimentError::for_record(&record.scenario, Some(record)))?;
        if metrics.power_reduction < -1e-9 {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reordering_never_loses_to_the_default_order() {
        let rows = reorder_ablation().unwrap();
        for circuit in ["dealer", "gcd", "vender"] {
            let best = rows
                .iter()
                .find(|r| r.circuit == circuit && r.order == "reordered (best)")
                .unwrap();
            let default =
                rows.iter().find(|r| r.circuit == circuit && r.order == "outputs-first").unwrap();
            assert!(
                best.power_reduction >= default.power_reduction - 1e-9,
                "{circuit}: reordered {} < default {}",
                best.power_reduction,
                default.power_reduction
            );
        }
        assert!(render_reorder(&rows).contains("outputs-first"));
    }

    #[test]
    fn pipelining_creates_slack_and_more_savings() {
        let rows = pipeline_ablation().unwrap();
        for circuit in ["dealer", "gcd", "vender"] {
            let one: Vec<&PipelineRow> = rows.iter().filter(|r| r.circuit == circuit).collect();
            assert_eq!(one.len(), 3);
            assert!(one[1].power_reduction >= one[0].power_reduction - 1e-9);
            assert!(one[1].effective_steps == one[0].effective_steps * 2);
            // The cost: deeper pipelines need at least as many extra
            // registers as shallower ones (within noise of the schedule).
            assert!(one[2].pm_muxes >= one[0].pm_muxes);
        }
        assert!(render_pipeline(&rows).contains("Stages"));
    }

    #[test]
    fn power_management_never_hurts() {
        assert!(never_worse_than_baseline().unwrap());
    }
}
