//! Ablations for the design choices of Section IV: multiplexor reordering
//! (IV-A) and pipelining (IV-B), plus the choice of final scheduler.

use cdfg::Cdfg;
use circuits::{all_benchmarks, dealer, gcd, vender};
use pmsched::algorithm::power_manage_reordered;
use pmsched::pipeline::power_manage_pipelined;
use pmsched::{power_manage, MuxOrder, PowerManageError, PowerManagementOptions};

/// The effect of one multiplexor processing order on one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderRow {
    /// Circuit name.
    pub circuit: String,
    /// Control steps.
    pub control_steps: u32,
    /// Ordering strategy label.
    pub order: String,
    /// Number of power-managed multiplexors.
    pub pm_muxes: usize,
    /// Datapath power reduction in percent.
    pub power_reduction: f64,
}

/// Runs the mux-ordering ablation (Section IV-A) over the non-trivial
/// benchmarks: outputs-first (the paper's default), inputs-first,
/// savings-driven, and the best order found by the reordering search.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn reorder_ablation() -> Result<Vec<ReorderRow>, PowerManageError> {
    let mut rows = Vec::new();
    let cases: Vec<(Cdfg, u32)> = vec![(dealer(), 5), (gcd(), 6), (vender(), 6)];
    for (cdfg, steps) in cases {
        let orders: Vec<(&str, MuxOrder)> = vec![
            ("outputs-first", MuxOrder::OutputsFirst),
            ("inputs-first", MuxOrder::InputsFirst),
            ("by-savings", MuxOrder::BySavings),
        ];
        for (label, order) in orders {
            let result =
                power_manage(&cdfg, &PowerManagementOptions::with_latency(steps).mux_order(order))?;
            rows.push(ReorderRow {
                circuit: cdfg.name().to_owned(),
                control_steps: steps,
                order: label.to_owned(),
                pm_muxes: result.managed_mux_count(),
                power_reduction: result.savings().reduction_percent,
            });
        }
        let best = power_manage_reordered(&cdfg, &PowerManagementOptions::with_latency(steps), 5)?;
        rows.push(ReorderRow {
            circuit: cdfg.name().to_owned(),
            control_steps: steps,
            order: "reordered (best)".to_owned(),
            pm_muxes: best.managed_mux_count(),
            power_reduction: best.savings().reduction_percent,
        });
    }
    Ok(rows)
}

/// The effect of pipeline depth on one circuit under a tight throughput
/// constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRow {
    /// Circuit name.
    pub circuit: String,
    /// Throughput constraint (control steps between samples).
    pub throughput_steps: u32,
    /// Pipeline stages.
    pub stages: u32,
    /// Control steps available to one sample after pipelining.
    pub effective_steps: u32,
    /// Power-managed multiplexors.
    pub pm_muxes: usize,
    /// Datapath power reduction in percent.
    pub power_reduction: f64,
    /// Estimated extra pipeline registers.
    pub extra_registers: usize,
}

/// Runs the pipelining ablation (Section IV-B): each circuit at its
/// critical-path throughput with 1, 2 and 3 pipeline stages.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn pipeline_ablation() -> Result<Vec<PipelineRow>, PowerManageError> {
    let mut rows = Vec::new();
    let cases: Vec<(Cdfg, u32)> = vec![(dealer(), 4), (gcd(), 5), (vender(), 5)];
    for (cdfg, steps) in cases {
        for stages in 1..=3u32 {
            let report = power_manage_pipelined(
                &cdfg,
                &PowerManagementOptions::with_latency(steps),
                stages,
            )?;
            rows.push(PipelineRow {
                circuit: cdfg.name().to_owned(),
                throughput_steps: steps,
                stages,
                effective_steps: report.effective_latency,
                pm_muxes: report.result.managed_mux_count(),
                power_reduction: report.reduction_percent(),
                extra_registers: report.extra_registers,
            });
        }
    }
    Ok(rows)
}

/// Renders the reorder ablation as text.
pub fn render_reorder(rows: &[ReorderRow]) -> String {
    let mut out = String::from("Ablation (Section IV-A): multiplexor processing order\n");
    out.push_str(&format!(
        "{:<8} {:>3} {:<18} {:>5} {:>8}\n",
        "Circuit", "Stp", "Order", "Muxs", "Red.(%)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>3} {:<18} {:>5} {:>8.2}\n",
            r.circuit, r.control_steps, r.order, r.pm_muxes, r.power_reduction
        ));
    }
    out
}

/// Renders the pipeline ablation as text.
pub fn render_pipeline(rows: &[PipelineRow]) -> String {
    let mut out =
        String::from("Ablation (Section IV-B): pipelining as a power-management enabler\n");
    out.push_str(&format!(
        "{:<8} {:>4} {:>6} {:>6} {:>5} {:>8} {:>6}\n",
        "Circuit", "Thru", "Stages", "Steps", "Muxs", "Red.(%)", "Regs"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>4} {:>6} {:>6} {:>5} {:>8.2} {:>6}\n",
            r.circuit,
            r.throughput_steps,
            r.stages,
            r.effective_steps,
            r.pm_muxes,
            r.power_reduction,
            r.extra_registers
        ));
    }
    out
}

/// A quick sanity ablation across all benchmarks: the power-managed run
/// never does worse than the baseline at the same constraints.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn never_worse_than_baseline() -> Result<bool, PowerManageError> {
    for bench in all_benchmarks() {
        for &steps in &bench.control_steps {
            let result = power_manage(&bench.cdfg, &PowerManagementOptions::with_latency(steps))?;
            if result.savings().reduction_percent < -1e-9 {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reordering_never_loses_to_the_default_order() {
        let rows = reorder_ablation().unwrap();
        for circuit in ["dealer", "gcd", "vender"] {
            let best = rows
                .iter()
                .find(|r| r.circuit == circuit && r.order == "reordered (best)")
                .unwrap();
            let default =
                rows.iter().find(|r| r.circuit == circuit && r.order == "outputs-first").unwrap();
            assert!(
                best.power_reduction >= default.power_reduction - 1e-9,
                "{circuit}: reordered {} < default {}",
                best.power_reduction,
                default.power_reduction
            );
        }
        assert!(render_reorder(&rows).contains("outputs-first"));
    }

    #[test]
    fn pipelining_creates_slack_and_more_savings() {
        let rows = pipeline_ablation().unwrap();
        for circuit in ["dealer", "gcd", "vender"] {
            let one: Vec<&PipelineRow> = rows.iter().filter(|r| r.circuit == circuit).collect();
            assert_eq!(one.len(), 3);
            assert!(one[1].power_reduction >= one[0].power_reduction - 1e-9);
            assert!(one[1].effective_steps == one[0].effective_steps * 2);
            // The cost: deeper pipelines need at least as many extra
            // registers as shallower ones (within noise of the schedule).
            assert!(one[2].pm_muxes >= one[0].pm_muxes);
        }
        assert!(render_pipeline(&rows).contains("Stages"));
    }

    #[test]
    fn power_management_never_hurts() {
        assert!(never_worse_than_baseline().unwrap());
    }
}
