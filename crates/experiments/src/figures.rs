//! Figures 1 and 2: the |a − b| walkthrough.

use cdfg::OpClass;
use circuits::abs_diff;
use pmsched::{power_manage, PowerManageError, PowerManagementOptions, PowerManagementResult};
use sched::ResourceConstraint;

/// The reproduction of Figure 1: with only two control steps the schedule
/// is unique, needs two subtractors and offers no power management.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The power-management result (degenerate: nothing managed).
    pub result: PowerManagementResult,
    /// Graphviz DOT rendering of the CDFG.
    pub dot: String,
}

/// The reproduction of Figure 2: with three control steps, (a) a
/// traditional schedule needs only one subtractor, and (b) the
/// power-managed schedule places the comparison first and shuts one
/// subtraction down every sample.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// (a) the traditional, resource-minimising schedule.
    pub traditional: PowerManagementResult,
    /// (b) the power-managed schedule (two subtractors, comparison first).
    pub managed: PowerManagementResult,
}

/// Reproduces Figure 1.
///
/// # Errors
///
/// Propagates scheduling failures (none are expected for this fixed input).
pub fn figure1() -> Result<Figure1, PowerManageError> {
    let cdfg = abs_diff();
    let dot = cdfg::dot::to_dot(&cdfg);
    let result = power_manage(&cdfg, &PowerManagementOptions::with_latency(2))?;
    Ok(Figure1 { result, dot })
}

/// Reproduces Figure 2.
///
/// # Errors
///
/// Propagates scheduling failures (none are expected for this fixed input).
pub fn figure2() -> Result<Figure2, PowerManageError> {
    let cdfg = abs_diff();
    // (a): traditional scheduling with minimum resources — one subtractor.
    let one_sub =
        ResourceConstraint::limited([(OpClass::Sub, 1), (OpClass::Comp, 1), (OpClass::Mux, 1)]);
    let traditional = power_manage(&cdfg, &PowerManagementOptions::with_resources(3, one_sub))?;
    // (b): power-managed scheduling with two subtractors available.
    let managed = power_manage(&cdfg, &PowerManagementOptions::with_latency(3))?;
    Ok(Figure2 { traditional, managed })
}

/// Renders the Figure 1 report as text.
pub fn render_figure1(fig: &Figure1) -> String {
    let mut out = String::new();
    out.push_str("Figure 1: |a - b| with 2 control steps (no power management possible)\n");
    out.push_str(&fig.result.schedule().render(fig.result.cdfg()));
    out.push_str(&format!(
        "power-managed muxes: {}, subtractors required: {}\n",
        fig.result.managed_mux_count(),
        fig.result.resource_usage().count(OpClass::Sub)
    ));
    out.push_str("\nCDFG (Graphviz):\n");
    out.push_str(&fig.dot);
    out
}

/// Renders the Figure 2 report as text.
pub fn render_figure2(fig: &Figure2) -> String {
    let mut out = String::new();
    out.push_str("Figure 2(a): traditional schedule, 3 control steps, 1 subtractor\n");
    out.push_str(&fig.traditional.schedule().render(fig.traditional.cdfg()));
    out.push_str("\nFigure 2(b): power-managed schedule, 3 control steps\n");
    out.push_str(&fig.managed.schedule().render(fig.managed.cdfg()));
    out.push_str(&format!(
        "\npower-managed muxes: {}, datapath power reduction: {:.1}%\n",
        fig.managed.managed_mux_count(),
        fig.managed.savings().reduction_percent
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_unique_two_step_schedule_without_management() {
        let fig = figure1().unwrap();
        assert_eq!(fig.result.schedule().num_steps(), 2);
        assert_eq!(fig.result.managed_mux_count(), 0);
        assert_eq!(fig.result.resource_usage().count(OpClass::Sub), 2);
        assert!(fig.dot.contains("MUX"));
        let text = render_figure1(&fig);
        assert!(text.contains("step 1"));
        assert!(text.contains("digraph"));
    }

    #[test]
    fn figure2_contrasts_traditional_and_managed_schedules() {
        let fig = figure2().unwrap();
        // (a): one subtractor, no gating.
        assert_eq!(fig.traditional.resource_usage().count(OpClass::Sub), 1);
        // (b): the comparison is scheduled first, one subtraction is gated
        // each sample, at the cost of a second subtractor.
        assert_eq!(fig.managed.managed_mux_count(), 1);
        assert_eq!(fig.managed.resource_usage().count(OpClass::Sub), 2);
        assert!(fig.managed.savings().reduction_percent > 10.0);
        let text = render_figure2(&fig);
        assert!(text.contains("Figure 2(a)"));
        assert!(text.contains("Figure 2(b)"));
    }

    #[test]
    fn partial_management_with_one_subtractor_still_saves_power() {
        // The end of Section II-B: even with a single subtractor the
        // operation scheduled after the comparison can be disabled.
        let fig = figure2().unwrap();
        let partial = fig.traditional.savings().reduction_percent;
        assert!(partial > 0.0, "one-subtractor schedule still gates the later subtraction");
        assert!(partial <= fig.managed.savings().reduction_percent + 1e-9);
    }
}
