//! The `genweep` study: shutdown-savings distributions across *generated*
//! circuit families.
//!
//! Where [`crate::sweep`] maps the paper's four circuits, this module runs
//! the engine over synthetic workloads from `crates/gen` — thousands of
//! circuits per family when asked — and aggregates the predicted power
//! reduction per family: min/median/max, the best circuit, and the size of
//! the per-circuit Pareto fronts.  The distribution is the point: it shows
//! *where* the paper's technique keeps saving power (conditional-heavy
//! mux trees) and where it collapses (straight-line DSP chains with almost
//! nothing to shut down).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use engine::report::{json_number, json_string};
use engine::{CacheStats, Engine, SchedulerKind, SweepPlan, SweepReport};
use gen::{Family, GenSpec};

use crate::ExperimentError;

/// Savings distribution over every scenario of one generated family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyDistribution {
    /// The family the circuits were drawn from.
    pub family: Family,
    /// Number of distinct circuits.
    pub circuits: usize,
    /// Number of scenarios executed (circuits × budgets × schedulers).
    pub scenarios: usize,
    /// Scenarios that failed (kept out of the statistics).
    pub failures: usize,
    /// Smallest predicted power reduction (percent).
    pub min_reduction: f64,
    /// Median predicted power reduction.
    pub median_reduction: f64,
    /// Largest predicted power reduction.
    pub max_reduction: f64,
    /// Circuit achieving the largest reduction.
    pub best_circuit: String,
    /// Total Pareto-front points across the family's circuits.
    pub pareto_points: usize,
}

/// Everything a genweep run produces.
#[derive(Debug, Clone)]
pub struct GenweepOutcome {
    /// The raw engine report over every generated scenario.
    pub report: SweepReport,
    /// Per-family aggregates, in [`Family::ALL`] order.
    pub families: Vec<FamilyDistribution>,
    /// Engine cache counters (prefix computations vs. reuses).
    pub cache: CacheStats,
}

/// The default study: `count` circuits of *every* family from one seed.
///
/// The cordic batch is clamped to its number of structurally distinct
/// variants (`49 - iters`; 45 at the default base) — cordic circuits are
/// fully determined by their iteration count, so asking for more would
/// only duplicate samples.
pub fn default_specs(seed: u64, count: usize) -> Vec<GenSpec> {
    Family::ALL
        .into_iter()
        .map(|family| {
            let mut spec = GenSpec::new(family, seed, count);
            if family == Family::Cordic {
                spec.count = count.min(49 - spec.iters as usize);
            }
            spec
        })
        .collect()
}

/// The sweep plan for an already generated batch: each circuit at every
/// one of its derived budgets, under both schedulers.
///
/// # Errors
///
/// Propagates plan validation (an empty batch yields an empty plan).
pub fn batch_plan(batch: &[circuits::Benchmark]) -> Result<SweepPlan, ExperimentError> {
    let mut builder = SweepPlan::builder();
    for bench in batch {
        for &steps in &bench.control_steps {
            builder = builder.case(bench.name.as_str(), steps);
        }
    }
    builder = builder.schedulers([SchedulerKind::ForceDirected, SchedulerKind::List]);
    Ok(builder.build()?)
}

/// Builds the engine (with every generated circuit registered) and the
/// deduplicated plan via [`batch_plan`]; each spec's circuits are generated
/// exactly once.
///
/// # Errors
///
/// Propagates generator knob violations and plan validation.
pub fn generated_setup(
    specs: &[GenSpec],
) -> Result<(Engine, SweepPlan, BTreeMap<String, Family>), ExperimentError> {
    let mut engine = Engine::new();
    let mut family_of = BTreeMap::new();
    let mut full_batch = Vec::new();
    for spec in specs {
        let batch = gen::generate(spec)?;
        for bench in &batch {
            family_of.insert(bench.name.clone(), spec.family);
        }
        full_batch.extend(batch);
    }
    let plan = batch_plan(&full_batch)?;
    engine.register_benchmarks(full_batch);
    Ok((engine, plan, family_of))
}

/// Runs the generated-workload sweep and returns the raw report plus cache
/// counters — the backend of the `sweep --gen` path.
///
/// # Errors
///
/// Propagates [`generated_setup`] failures; per-scenario failures stay in
/// the report.
pub fn sweep_generated(
    specs: &[GenSpec],
    threads: usize,
) -> Result<(SweepReport, CacheStats), ExperimentError> {
    let (engine, plan, _) = generated_setup(specs)?;
    let report = engine.run(&plan, threads);
    Ok((report, engine.cache_stats()))
}

/// Runs the full genweep study: sweep plus per-family distributions.
///
/// # Errors
///
/// Propagates [`generated_setup`] failures.
pub fn genweep(specs: &[GenSpec], threads: usize) -> Result<GenweepOutcome, ExperimentError> {
    let (engine, plan, family_of) = generated_setup(specs)?;
    let report = engine.run(&plan, threads);
    let families = family_distributions(&report, &family_of);
    Ok(GenweepOutcome { report, families, cache: engine.cache_stats() })
}

/// Aggregates a report into per-family distributions (families ordered as
/// in [`Family::ALL`]; families with no scenarios at all are omitted, but a
/// family whose scenarios *all failed* keeps its row — zeroed statistics,
/// `-` as the best circuit — so failures are never hidden).
pub fn family_distributions(
    report: &SweepReport,
    family_of: &BTreeMap<String, Family>,
) -> Vec<FamilyDistribution> {
    let mut out = Vec::new();
    for family in Family::ALL {
        let mut circuits: BTreeSet<&str> = BTreeSet::new();
        let mut reductions: Vec<(f64, &str)> = Vec::new();
        let mut scenarios = 0usize;
        let mut failures = 0usize;
        for record in &report.records {
            if family_of.get(&record.scenario.circuit) != Some(&family) {
                continue;
            }
            scenarios += 1;
            circuits.insert(&record.scenario.circuit);
            match record.metrics() {
                Some(m) => reductions.push((m.power_reduction, &record.scenario.circuit)),
                None => failures += 1,
            }
        }
        if scenarios == 0 {
            continue;
        }
        reductions.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(b.1)));
        // A family whose every scenario failed still gets a row — the
        // failure count is the story then — with zeroed statistics and a
        // placeholder best circuit.
        let median = match reductions.len() {
            0 => 0.0,
            n if n % 2 == 1 => reductions[n / 2].0,
            n => (reductions[n / 2 - 1].0 + reductions[n / 2].0) / 2.0,
        };
        let (max_reduction, best_circuit) = match reductions.last() {
            Some(&(value, circuit)) => (value, circuit.to_owned()),
            None => (0.0, "-".to_owned()),
        };
        let pareto_points =
            report.pareto.iter().filter(|p| family_of.get(&p.circuit) == Some(&family)).count();
        out.push(FamilyDistribution {
            family,
            circuits: circuits.len(),
            scenarios,
            failures,
            min_reduction: reductions.first().map_or(0.0, |&(value, _)| value),
            median_reduction: median,
            max_reduction,
            best_circuit,
            pareto_points,
        });
    }
    out
}

/// Renders the per-family table.
pub fn render(families: &[FamilyDistribution]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>6} {:>5} {:>8} {:>8} {:>8} {:>7}  best circuit",
        "Family", "Circ", "Scen", "Fail", "Min(%)", "Med(%)", "Max(%)", "Pareto"
    );
    for f in families {
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>6} {:>5} {:>8.2} {:>8.2} {:>8.2} {:>7}  {}",
            f.family.name(),
            f.circuits,
            f.scenarios,
            f.failures,
            f.min_reduction,
            f.median_reduction,
            f.max_reduction,
            f.pareto_points,
            f.best_circuit
        );
    }
    out
}

/// Renders the per-family distributions as JSON (stable key order, like the
/// engine's report emitters).
pub fn families_json(families: &[FamilyDistribution]) -> String {
    let mut out = String::from("{\n  \"families\": [");
    for (i, f) in families.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"family\": {}, \"circuits\": {}, \"scenarios\": {}, \"failures\": {}, \
             \"min_reduction\": {}, \"median_reduction\": {}, \"max_reduction\": {}, \
             \"best_circuit\": {}, \"pareto_points\": {}}}",
            json_string(f.family.name()),
            f.circuits,
            f.scenarios,
            f.failures,
            json_number(f.min_reduction),
            json_number(f.median_reduction),
            json_number(f.max_reduction),
            json_string(&f.best_circuit),
            f.pareto_points,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_specs() -> Vec<GenSpec> {
        default_specs(42, 2)
    }

    #[test]
    fn genweep_covers_every_family_with_no_failures() {
        let outcome = genweep(&small_specs(), 2).unwrap();
        assert_eq!(outcome.families.len(), 4);
        for f in &outcome.families {
            assert_eq!(f.circuits, 2, "{}", f.family);
            assert_eq!(f.scenarios, 2 * 2 * 2, "circuits × budgets × schedulers");
            assert_eq!(f.failures, 0, "{}", f.family);
            assert!(f.min_reduction <= f.median_reduction);
            assert!(f.median_reduction <= f.max_reduction);
            assert!(f.pareto_points >= 1);
            assert!(f.best_circuit.starts_with("gen-"));
        }
    }

    #[test]
    fn mux_trees_out_save_the_general_population() {
        // The headline claim the study exists for: conditional-heavy
        // circuits are where the paper's technique shines.
        let outcome = genweep(&default_specs(7, 4), 0).unwrap();
        let by_family: BTreeMap<Family, &FamilyDistribution> =
            outcome.families.iter().map(|f| (f.family, f)).collect();
        let tree = by_family[&Family::MuxTree];
        let dsp = by_family[&Family::DspChain];
        assert!(
            tree.median_reduction > dsp.median_reduction,
            "mux-tree median {} should beat dsp-chain median {}",
            tree.median_reduction,
            dsp.median_reduction
        );
    }

    #[test]
    fn outcome_is_deterministic_across_thread_counts() {
        let one = genweep(&small_specs(), 1).unwrap();
        let four = genweep(&small_specs(), 4).unwrap();
        assert_eq!(one.report.to_json(), four.report.to_json());
        assert_eq!(one.families, four.families);
        assert_eq!(families_json(&one.families), families_json(&four.families));
    }

    #[test]
    fn all_failed_families_keep_their_row() {
        use engine::{Scenario, SweepRecord};
        let mut family_of = BTreeMap::new();
        family_of.insert("gen-rdag-x-0000".to_owned(), Family::RandomDag);
        let report = engine::SweepReport::from_records(vec![SweepRecord {
            scenario: Scenario::new("gen-rdag-x-0000", 4),
            outcome: Err("infeasible".to_owned()),
        }]);
        let families = family_distributions(&report, &family_of);
        assert_eq!(families.len(), 1, "the failing family is not dropped");
        let f = &families[0];
        assert_eq!((f.scenarios, f.failures, f.circuits), (1, 1, 1));
        assert_eq!(f.best_circuit, "-");
        assert_eq!(f.max_reduction, 0.0);
        assert!(render(&families).contains("random-dag"));
    }

    #[test]
    fn render_and_json_name_every_family() {
        let outcome = genweep(&small_specs(), 2).unwrap();
        let text = render(&outcome.families);
        let json = families_json(&outcome.families);
        for family in Family::ALL {
            assert!(text.contains(family.name()), "{family} in table");
            assert!(json.contains(family.name()), "{family} in json");
        }
    }
}
