//! The `dvsweep` study: fine-grained DVS policies against the global
//! scaling curve, plus the measured optimality gap of the greedy
//! slack-distribution kernel against the exact branch-and-bound
//! reference.
//!
//! Two questions, two tables:
//!
//! * **Policy comparison** — for every paper circuit, the full budget
//!   range is explored once per [`VoltagePolicy`]: the global quadratic
//!   curve and the per-op presets with 2, 3 and 5 discrete levels.  Each
//!   row reports the widest point's energy and area, so the table shows
//!   what finer voltage granularity buys (lower energy) and what it
//!   costs (voltage-partitioned units cannot be shared, so area can
//!   move).
//! * **Optimality gap** — on circuits small enough for the exact
//!   reference ([`sched::dvs::exact_min_energy`], enabled through the
//!   `reference` feature), the greedy kernel's energy is set against the
//!   exact minimum at every feasible budget.  The gap is reported in
//!   percent; the kernel is admissible, so the gap is never negative
//!   (up to float rounding).  Circuits too large for the exact search
//!   are listed as skipped, never silently dropped.
//!
//! Both tables are byte-identical across reruns and thread counts: the
//! explorations run on the engine's deterministic pool and the gap sweep
//! is strictly sequential.

use std::fmt::Write as _;

use circuits::{abs_diff, all_benchmarks};
use engine::report::json_number;
use engine::{
    BudgetCeiling, BudgetPolicy, DelayScaling, Engine, ExploreOptions, ExploreRequest,
    VoltagePolicy, VoltagePreset,
};
use gen::{Family, GenSpec};
use pmsched::{power_manage, OpWeights, PowerManagementOptions, SelectProbabilities};

use crate::ExperimentError;

/// The policies the comparison table walks, in report order.
pub const POLICIES: [VoltagePolicy; 4] = [
    VoltagePolicy::Global(DelayScaling::Quadratic),
    VoltagePolicy::PerOp(VoltagePreset::TwoLevel),
    VoltagePolicy::PerOp(VoltagePreset::ThreeLevel),
    VoltagePolicy::PerOp(VoltagePreset::FiveLevel),
];

/// Functional-node ceiling for the exact reference: beyond this the
/// branch-and-bound search may blow up combinatorially, so the circuit is
/// reported as skipped instead.
const EXACT_NODE_CAP: usize = 18;

/// One circuit × policy row of the comparison table.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Circuit name.
    pub circuit: String,
    /// The voltage policy explored.
    pub policy: VoltagePolicy,
    /// Points on the walk (full budget range).
    pub points: usize,
    /// Points surviving 3-objective front marking.
    pub front_points: usize,
    /// Scaled-weighted energy at the widest budget.
    pub widest_energy: f64,
    /// Datapath area at the widest budget.
    pub widest_area: f64,
    /// Combined reduction percent at the widest budget.
    pub widest_combined: f64,
}

/// One circuit × preset × budget row of the optimality-gap table.
#[derive(Debug, Clone)]
pub struct GapRow {
    /// Circuit name.
    pub circuit: String,
    /// The per-op preset whose level table was distributed.
    pub preset: VoltagePreset,
    /// The latency budget.
    pub budget: u32,
    /// Greedy kernel energy.
    pub heuristic: f64,
    /// Exact branch-and-bound minimum energy.
    pub exact: f64,
    /// `(heuristic − exact) / exact × 100` (0 when exact is 0).
    pub gap_percent: f64,
}

/// The whole study's results.
#[derive(Debug, Clone)]
pub struct DvsweepOutcome {
    /// Budget span above the critical path both tables walked.
    pub span: u32,
    /// Comparison rows, circuit-major in [`POLICIES`] order.
    pub policy_rows: Vec<PolicyRow>,
    /// Gap rows, circuit-major, preset-major, ascending budgets.
    pub gap_rows: Vec<GapRow>,
    /// Circuits excluded from the exact study (too many functional
    /// nodes), with the node count that disqualified them.
    pub skipped: Vec<(String, usize)>,
}

impl DvsweepOutcome {
    /// The largest measured optimality gap in percent.
    pub fn max_gap_percent(&self) -> f64 {
        self.gap_rows.iter().map(|r| r.gap_percent).fold(0.0, f64::max)
    }

    /// Whether the greedy kernel lower-bounds correctly everywhere: no
    /// heuristic energy below the exact minimum (beyond float rounding).
    pub fn kernel_is_admissible(&self) -> bool {
        self.gap_rows.iter().all(|r| r.heuristic >= r.exact - 1e-9 * r.exact.abs().max(1.0))
    }
}

/// The exact-study circuits: the paper's `abs_diff` plus one small
/// generated circuit per family.
fn gap_circuits() -> Result<Vec<(String, cdfg::Cdfg)>, ExperimentError> {
    let mut circuits = vec![("abs_diff".to_owned(), abs_diff())];
    for family in Family::ALL {
        let mut spec = GenSpec::new(family, 11, 1);
        match family {
            Family::RandomDag => {
                spec.width = 3;
                spec.depth = 4;
                spec.mux_permille = 300;
            }
            Family::MuxTree => spec.depth = 2,
            Family::DspChain => spec.taps = 3,
            Family::Cordic => spec.iters = 2,
        }
        let bench = gen::generate_one(&spec, 0)?;
        circuits.push((bench.name, bench.cdfg));
    }
    Ok(circuits)
}

/// Runs the study (see the module docs).  `small` drops the heavyweight
/// `cordic` circuit from the comparison and trims the gap sweep to one
/// preset and a narrower budget walk — the CI smoke configuration.
///
/// # Errors
///
/// Propagates generator and power-management failures; an infeasible
/// budget inside the walked range is a bug, not a skip.
pub fn run_dvsweep(small: bool, threads: usize) -> Result<DvsweepOutcome, ExperimentError> {
    let span = if small { 3 } else { 6 };

    // Policy comparison over the paper circuits.
    let requests: Vec<ExploreRequest> = {
        let mut requests = vec![ExploreRequest::new("abs_diff")];
        for bench in all_benchmarks() {
            if small && bench.name == "cordic" {
                continue;
            }
            requests.push(ExploreRequest::new(bench.name.as_str()));
        }
        requests
    };
    let engine = Engine::new();
    let mut policy_rows = Vec::new();
    for policy in POLICIES {
        let options = ExploreOptions::new()
            .policy(BudgetPolicy::FullRange)
            .ceiling(BudgetCeiling::CriticalPathPlus(span))
            .voltage(policy);
        let report = engine.explore(&requests, &options, threads);
        for circuit in &report.circuits {
            if let Some(failure) = circuit.failures.first() {
                return Err(ExperimentError {
                    context: format!("dvsweep {} under {}", circuit.circuit, policy),
                    message: failure.1.clone(),
                });
            }
            let widest = circuit.points.last().ok_or_else(|| ExperimentError {
                context: format!("dvsweep {} under {}", circuit.circuit, policy),
                message: "exploration produced no points".to_owned(),
            })?;
            policy_rows.push(PolicyRow {
                circuit: circuit.circuit.clone(),
                policy,
                points: circuit.points.len(),
                front_points: circuit.points.iter().filter(|p| p.on_front).count(),
                widest_energy: widest.energy,
                widest_area: widest.area,
                widest_combined: widest.combined_reduction,
            });
        }
    }
    // Circuit-major order reads better than the policy-major loop above.
    policy_rows.sort_by(|a, b| {
        let pos = |row: &PolicyRow| {
            (
                requests.iter().position(|r| r.circuit == row.circuit),
                POLICIES.iter().position(|p| *p == row.policy),
            )
        };
        pos(a).cmp(&pos(b))
    });

    // Optimality gap on the small circuits.
    let presets: &[VoltagePreset] = if small {
        &[VoltagePreset::ThreeLevel]
    } else {
        &[VoltagePreset::TwoLevel, VoltagePreset::ThreeLevel, VoltagePreset::FiveLevel]
    };
    let gap_span = if small { 2 } else { 3 };
    let weights = OpWeights::paper_power();
    let mut gap_rows = Vec::new();
    let mut skipped = Vec::new();
    let mut ws = sched::dvs::Workspace::new();
    for (name, cdfg) in gap_circuits()? {
        let functional = cdfg.functional_nodes().len();
        if functional > EXACT_NODE_CAP {
            skipped.push((name, functional));
            continue;
        }
        let critical_path = cdfg.critical_path_length();
        for &preset in presets {
            let table = preset.table();
            let levels = table.slack_levels();
            for budget in critical_path..=critical_path + gap_span {
                let context = || ExperimentError {
                    context: format!("dvsweep gap {name} preset {preset:?} budget {budget}"),
                    message: String::new(),
                };
                let options = PowerManagementOptions::with_latency(budget);
                let result = power_manage(&cdfg, &options)
                    .map_err(|e| ExperimentError { message: e.to_string(), ..context() })?;
                let probs = SelectProbabilities::fair();
                let activation = result.activation(&probs);
                let pm = result.cdfg();
                let node_weight = |n: cdfg::NodeId| {
                    let class = pm.node(n).expect("live node").op.class();
                    weights.weight(class) * activation.probability(n)
                };
                let heur = sched::dvs::distribute_slack(
                    pm,
                    result.latency(),
                    &levels,
                    &node_weight,
                    &mut ws,
                )
                .map_err(|e| ExperimentError { message: e.to_string(), ..context() })?;
                let exact =
                    sched::dvs::exact_min_energy(pm, result.latency(), &levels, &node_weight)
                        .map_err(|e| ExperimentError { message: e.to_string(), ..context() })?;
                let gap_percent = if exact.energy() > 0.0 {
                    (heur.energy() - exact.energy()) / exact.energy() * 100.0
                } else {
                    0.0
                };
                gap_rows.push(GapRow {
                    circuit: name.clone(),
                    preset,
                    budget,
                    heuristic: heur.energy(),
                    exact: exact.energy(),
                    gap_percent,
                });
            }
        }
    }

    Ok(DvsweepOutcome { span, policy_rows, gap_rows, skipped })
}

fn preset_label(preset: VoltagePreset) -> &'static str {
    match preset {
        VoltagePreset::TwoLevel => "per-op-2",
        VoltagePreset::ThreeLevel => "per-op-3",
        VoltagePreset::FiveLevel => "per-op-5",
    }
}

/// Renders both tables as fixed-width text.
pub fn render(outcome: &DvsweepOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Voltage-policy comparison (widest budget = critical path + {}):",
        outcome.span
    );
    let _ = writeln!(
        out,
        "{:<10} {:<16} {:>6} {:>6} {:>10} {:>10} {:>9}",
        "circuit", "policy", "points", "front", "energy", "area", "comb %"
    );
    for row in &outcome.policy_rows {
        let _ = writeln!(
            out,
            "{:<10} {:<16} {:>6} {:>6} {:>10.3} {:>10.1} {:>9.2}",
            row.circuit,
            row.policy.label(),
            row.points,
            row.front_points,
            row.widest_energy,
            row.widest_area,
            row.widest_combined,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Greedy kernel vs exact reference (optimality gap):");
    let _ = writeln!(
        out,
        "{:<14} {:<9} {:>6} {:>10} {:>10} {:>8}",
        "circuit", "preset", "budget", "greedy", "exact", "gap %"
    );
    for row in &outcome.gap_rows {
        let _ = writeln!(
            out,
            "{:<14} {:<9} {:>6} {:>10.4} {:>10.4} {:>8.3}",
            row.circuit,
            preset_label(row.preset),
            row.budget,
            row.heuristic,
            row.exact,
            row.gap_percent,
        );
    }
    for (name, nodes) in &outcome.skipped {
        let _ =
            writeln!(out, "skipped {name}: {nodes} functional nodes exceed the exact-search cap");
    }
    let _ = writeln!(
        out,
        "max gap {:.3}% over {} measurements; kernel admissible: {}",
        outcome.max_gap_percent(),
        outcome.gap_rows.len(),
        outcome.kernel_is_admissible(),
    );
    out
}

/// Renders the study as JSON (stable key order, one row per line).
pub fn to_json(outcome: &DvsweepOutcome) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"span\": {},", outcome.span);
    let _ = writeln!(out, "  \"policies\": [");
    for (i, row) in outcome.policy_rows.iter().enumerate() {
        let comma = if i + 1 == outcome.policy_rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"circuit\": \"{}\", \"policy\": \"{}\", \"points\": {}, \
             \"front_points\": {}, \"widest_energy\": {}, \"widest_area\": {}, \
             \"widest_combined\": {}}}{comma}",
            row.circuit,
            row.policy.label(),
            row.points,
            row.front_points,
            json_number(row.widest_energy),
            json_number(row.widest_area),
            json_number(row.widest_combined),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"gaps\": [");
    for (i, row) in outcome.gap_rows.iter().enumerate() {
        let comma = if i + 1 == outcome.gap_rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"circuit\": \"{}\", \"preset\": \"{}\", \"budget\": {}, \
             \"heuristic\": {}, \"exact\": {}, \"gap_percent\": {}}}{comma}",
            row.circuit,
            preset_label(row.preset),
            row.budget,
            json_number(row.heuristic),
            json_number(row.exact),
            json_number(row.gap_percent),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"skipped\": [");
    for (i, (name, nodes)) in outcome.skipped.iter().enumerate() {
        let comma = if i + 1 == outcome.skipped.len() { "" } else { "," };
        let _ =
            writeln!(out, "    {{\"circuit\": \"{name}\", \"functional_nodes\": {nodes}}}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"max_gap_percent\": {},", json_number(outcome.max_gap_percent()));
    let _ = writeln!(out, "  \"kernel_admissible\": {}", outcome.kernel_is_admissible());
    out.push('}');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_measures_gaps_and_stays_admissible() {
        let outcome = run_dvsweep(true, 2).unwrap();
        assert!(!outcome.policy_rows.is_empty());
        assert!(!outcome.gap_rows.is_empty());
        assert!(outcome.kernel_is_admissible(), "{outcome:?}");
        // Every gap-study circuit × budget appears once per preset.
        assert!(outcome.gap_rows.iter().all(|r| r.preset == VoltagePreset::ThreeLevel));
        // The per-op presets never price above the global curve at the
        // widest budget: finer granularity only helps.
        for chunk in outcome.policy_rows.chunks(POLICIES.len()) {
            assert_eq!(chunk.len(), POLICIES.len());
            let global = &chunk[0];
            assert_eq!(global.policy, POLICIES[0]);
            for per_op in &chunk[1..] {
                assert_eq!(per_op.circuit, global.circuit);
                assert!(
                    per_op.widest_energy.total_cmp(&global.widest_energy).is_le(),
                    "{}: {} vs global",
                    per_op.circuit,
                    per_op.policy
                );
            }
        }
        let text = render(&outcome);
        assert!(text.contains("kernel admissible: true"));
        assert!(to_json(&outcome).contains("\"kernel_admissible\": true"));
    }

    #[test]
    fn thread_counts_do_not_change_the_rendered_bytes() {
        let solo = run_dvsweep(true, 1).unwrap();
        let wide = run_dvsweep(true, 4).unwrap();
        assert_eq!(to_json(&solo), to_json(&wide));
        assert_eq!(render(&solo), render(&wide));
    }
}
