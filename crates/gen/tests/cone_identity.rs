//! Cone-identity property tests: the dense-bitset mux analysis
//! (`pmsched::cones`) and the retained `BTreeSet`-walking reference
//! (`pmsched::naive`) must produce *equal* `MuxCones` — same cones, same
//! shut-down sets — for every multiplexor of every circuit family the
//! generator can draw, and the incremental selection loop must reach the
//! same decisions as the original insert-recompute-rollback loop.
//!
//! This is the contract the analysis rewrite rests on: the bitset sweeps and
//! the incremental ASAP/ALAP tightening are pure speedups, pinned
//! observation-equivalent to the original implementation.  Control-edge
//! *ids* are deliberately not compared — the incremental path only inserts
//! edges for accepted multiplexors and therefore draws different ids from
//! the graph's free list; everything observable (schedules, acceptance,
//! shut-down sets, savings) must match exactly.

use gen::{Family, GenSpec};
use pmsched::{naive, ConeWorkspace, MuxCones, PowerManagementOptions};
use proptest::prelude::*;

/// Builds the spec for one generated circuit of the given family with
/// family-appropriate size knobs.
fn spec_for(family: Family, seed: u64, size: u8) -> GenSpec {
    let mut spec = GenSpec::new(family, seed, 1);
    match family {
        Family::RandomDag => {
            spec.width = 4 + u32::from(size % 3) * 4; // 4, 8 or 12
            spec.depth = 6 + u32::from(size / 3) * 6; // 6, 12 or 18
            spec.mux_permille = 250;
        }
        Family::MuxTree => spec.depth = 3 + u32::from(size % 4), // 3..=6
        Family::DspChain => spec.taps = 4 + u32::from(size % 5) * 4, // 4..=20
        Family::Cordic => spec.iters = 3 + u32::from(size % 6),  // 3..=8
    }
    spec
}

fn family_strategy() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::RandomDag),
        Just(Family::MuxTree),
        Just(Family::DspChain),
        Just(Family::Cordic),
    ]
}

/// Asserts decision equivalence of the incremental and naive selection
/// loops on one circuit at one latency (everything except control-edge ids).
fn assert_power_manage_identity(cdfg: &cdfg::Cdfg, options: &PowerManagementOptions, name: &str) {
    let fast = pmsched::power_manage(cdfg, options).expect("feasible budget");
    let slow = naive::power_manage(cdfg, options).expect("feasible budget");
    assert_eq!(fast.schedule(), slow.schedule(), "{name}: schedules diverged");
    assert_eq!(fast.baseline_schedule(), slow.baseline_schedule(), "{name}: baselines diverged");
    assert_eq!(fast.managed_muxes().len(), slow.managed_muxes().len(), "{name}: mux counts");
    for (f, s) in fast.managed_muxes().iter().zip(slow.managed_muxes()) {
        assert_eq!(f.mux, s.mux, "{name}: mux order diverged");
        assert_eq!(f.accepted, s.accepted, "{name}: acceptance of {} diverged", f.mux);
        assert_eq!(f.select_driver, s.select_driver, "{name}: select driver of {}", f.mux);
        assert_eq!(f.shutdown_false, s.shutdown_false, "{name}: shutdown_false of {}", f.mux);
        assert_eq!(f.shutdown_true, s.shutdown_true, "{name}: shutdown_true of {}", f.mux);
    }
    assert_eq!(
        fast.savings().reduction_percent,
        slow.savings().reduction_percent,
        "{name}: savings must be bit-identical"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The bitset cone analysis and the naive reference agree exactly —
    /// same cones and shut-down sets per multiplexor — across families,
    /// seeds and sizes, with one shared workspace serving every mux.
    #[test]
    fn bitset_cones_equal_naive_reference(
        family in family_strategy(),
        seed in 0u64..1000,
        size in 0u8..9,
    ) {
        let spec = spec_for(family, seed, size);
        let bench = gen::generate_one(&spec, 0).expect("generator produces valid circuits");
        let mut ws = ConeWorkspace::new();
        ws.prepare(&bench.cdfg);
        for mux in bench.cdfg.mux_nodes() {
            let fast = MuxCones::analyze_with(&bench.cdfg, mux, &mut ws);
            let slow = naive::analyze(&bench.cdfg, mux);
            prop_assert_eq!(&fast, &slow, "cones diverged on {} mux {}", bench.name, mux);
        }
    }

    /// The incremental selection loop (ancestor-set cycle check, ASAP/ALAP
    /// tightening, deferred edge insertion) reaches the same decisions as
    /// the original loop on every generated circuit.
    #[test]
    fn incremental_selection_equals_naive_reference(
        family in family_strategy(),
        seed in 0u64..500,
        size in 0u8..9,
        slack in 0u32..4,
    ) {
        let spec = spec_for(family, seed, size);
        let bench = gen::generate_one(&spec, 0).expect("generator produces valid circuits");
        let latency = bench.cdfg.critical_path_length().max(1) + slack;
        let options = PowerManagementOptions::with_latency(latency);
        assert_power_manage_identity(&bench.cdfg, &options, bench.name.as_str());
    }
}

/// Every paper circuit at every Table II budget: same decisions.
#[test]
fn paper_circuits_power_manage_identically() {
    for bench in circuits::all_benchmarks() {
        for &steps in &bench.control_steps {
            let options = PowerManagementOptions::with_latency(steps);
            assert_power_manage_identity(&bench.cdfg, &options, &bench.name);
        }
    }
}

/// A denser budget walk over one mid-sized circuit per family.
#[test]
fn budget_walk_identity_per_family() {
    for family in Family::ALL {
        let spec = spec_for(family, 20260729, 4);
        let bench = gen::generate_one(&spec, 0).expect("valid circuit");
        let cp = bench.cdfg.critical_path_length().max(1);
        for latency in cp..=cp + 5 {
            let options = PowerManagementOptions::with_latency(latency);
            assert_power_manage_identity(&bench.cdfg, &options, bench.name.as_str());
        }
    }
}
