//! Property-based tests for the synthetic circuit generator: every
//! generated circuit must be structurally valid, schedulable at its derived
//! budgets under both final schedulers, and byte-identical across runs for
//! a fixed seed.

use gen::{Family, GenSpec};
use proptest::prelude::*;
use sched::hyper::{self, HyperOptions};
use sched::ResourceConstraint;

fn family_from(index: usize) -> Family {
    Family::ALL[index % Family::ALL.len()]
}

/// A spec exercising non-default knobs so the properties cover the whole
/// parameter space, not just the defaults.
fn spec_from(seed: u64, family_index: usize, scale: u32) -> GenSpec {
    let mut spec = GenSpec::new(family_from(family_index), seed, 2);
    spec.width = 2 + scale;
    spec.depth = 2 + scale;
    spec.mux_permille = 150 * scale as u16;
    spec.taps = 3 + scale;
    spec.iters = 2 + scale;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_generated_circuit_is_structurally_valid(
        seed in 0u64..10_000,
        family_index in 0usize..4,
        scale in 1u32..5,
    ) {
        let spec = spec_from(seed, family_index, scale);
        for bench in gen::generate(&spec).unwrap() {
            prop_assert!(bench.cdfg.validate().is_ok(), "{} invalid", bench.name);
            prop_assert_eq!(bench.name.as_str(), bench.cdfg.name());
            prop_assert!(bench.cdfg.critical_path_length() >= 1);
            prop_assert!(!bench.cdfg.outputs().is_empty());
        }
    }

    #[test]
    fn derived_budgets_are_schedulable_under_both_schedulers(
        seed in 0u64..10_000,
        family_index in 0usize..4,
        scale in 1u32..4,
    ) {
        let spec = spec_from(seed, family_index, scale);
        for bench in gen::generate(&spec).unwrap() {
            let cp = bench.cdfg.critical_path_length();
            prop_assert_eq!(bench.control_steps[0], cp);
            for &budget in &bench.control_steps {
                // Force-directed (unlimited units, latency-constrained).
                let force = hyper::schedule(&bench.cdfg, &HyperOptions::with_latency(budget));
                prop_assert!(force.is_ok(), "{} force @ {budget}", bench.name);
                let force = force.unwrap();
                prop_assert!(force.num_steps() <= budget);
                prop_assert!(force.validate(&bench.cdfg).is_ok());

                // List scheduling on the minimum allocation — the engine's
                // SchedulerKind::List contract.
                let minimum = hyper::minimum_resources(&bench.cdfg, budget).unwrap();
                let list = hyper::schedule(
                    &bench.cdfg,
                    &HyperOptions::with_resources(budget, ResourceConstraint::Limited(minimum)),
                );
                prop_assert!(list.is_ok(), "{} list @ {budget}", bench.name);
                prop_assert!(list.unwrap().num_steps() <= budget);
            }
        }
    }

    #[test]
    fn fixed_seeds_reproduce_byte_identical_circuits(
        seed in 0u64..10_000,
        family_index in 0usize..4,
        scale in 1u32..5,
    ) {
        let spec = spec_from(seed, family_index, scale);
        let first = gen::generate(&spec).unwrap();
        let second = gen::generate(&spec).unwrap();
        prop_assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.control_steps, &b.control_steps);
            // DOT export serialises every node, edge, port and name — equal
            // strings mean equal graphs, byte for byte.
            prop_assert_eq!(cdfg::dot::to_dot(&a.cdfg), cdfg::dot::to_dot(&b.cdfg));
        }
    }

    #[test]
    fn different_seeds_give_structurally_different_random_dags(
        seed in 0u64..10_000,
    ) {
        // Not a tautology: the op mix, operand picks and layer shapes all
        // come from the stream, so two adjacent seeds colliding on the
        // whole DOT body would indicate a broken stream derivation.
        let a_spec = GenSpec::new(Family::RandomDag, seed, 1);
        let b_spec = GenSpec::new(Family::RandomDag, seed + 1, 1);
        let a = &gen::generate(&a_spec).unwrap()[0];
        let b = &gen::generate(&b_spec).unwrap()[0];
        let a_dot = cdfg::dot::to_dot(&a.cdfg).replace(&a.name, "X");
        let b_dot = cdfg::dot::to_dot(&b.cdfg).replace(&b.name, "X");
        prop_assert_ne!(a_dot, b_dot);
    }
}
