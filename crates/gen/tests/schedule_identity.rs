//! Schedule-identity property tests: the incremental force-directed kernel
//! (`sched::force`) and the retained map-based reference (`sched::naive`)
//! must produce *equal* schedules — bit-identical step assignments — on
//! every circuit family the generator can draw, and must agree on
//! infeasibility errors.
//!
//! This is the contract the sweep byte-identity guarantees rest on: if the
//! two kernels ever diverge on any circuit, the incremental rewrite changed
//! observable behaviour and these tests fail before any JSON does.

use gen::{Family, GenSpec};
use proptest::prelude::*;
use sched::error::ScheduleError;
use sched::{force, naive};

/// Builds the spec for one generated circuit of the given family with
/// family-appropriate size knobs.
fn spec_for(family: Family, seed: u64, size: u8) -> GenSpec {
    let mut spec = GenSpec::new(family, seed, 1);
    match family {
        Family::RandomDag => {
            spec.width = 4 + u32::from(size % 3) * 4; // 4, 8 or 12
            spec.depth = 6 + u32::from(size / 3) * 6; // 6, 12 or 18
            spec.mux_permille = 250;
        }
        Family::MuxTree => spec.depth = 3 + u32::from(size % 4), // 3..=6
        Family::DspChain => spec.taps = 4 + u32::from(size % 5) * 4, // 4..=20
        Family::Cordic => spec.iters = 3 + u32::from(size % 6),  // 3..=8
    }
    spec
}

fn family_strategy() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::RandomDag),
        Just(Family::MuxTree),
        Just(Family::DspChain),
        Just(Family::Cordic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The incremental and naive force-directed schedulers agree exactly —
    /// same steps for every node — across families, seeds, sizes and
    /// latency slacks.
    #[test]
    fn incremental_force_equals_naive_reference(
        family in family_strategy(),
        seed in 0u64..1000,
        size in 0u8..9,
        slack in 0u32..5,
    ) {
        let spec = spec_for(family, seed, size);
        let bench = gen::generate_one(&spec, 0).expect("generator produces valid circuits");
        let latency = bench.cdfg.critical_path_length().max(1) + slack;
        let fast = force::schedule(&bench.cdfg, latency).expect("feasible latency");
        let slow = naive::schedule(&bench.cdfg, latency).expect("feasible latency");
        prop_assert_eq!(
            &fast, &slow,
            "kernels diverged on {} at latency {}", bench.name, latency
        );
        fast.validate(&bench.cdfg).expect("valid schedule");
    }

    /// Below the critical path both kernels report the same
    /// `LatencyTooSmall` error (same requested and critical-path fields).
    #[test]
    fn latency_too_small_errors_agree(
        family in family_strategy(),
        seed in 0u64..1000,
        size in 0u8..9,
    ) {
        let spec = spec_for(family, seed, size);
        let bench = gen::generate_one(&spec, 0).expect("generator produces valid circuits");
        let cp = bench.cdfg.critical_path_length();
        // Every family's circuits are at least two steps deep, so cp - 1 is
        // a meaningful sub-critical latency (the shim has no prop_assume).
        prop_assert!(cp > 1, "{} has a degenerate critical path", bench.name);
        let fast = force::schedule(&bench.cdfg, cp - 1).unwrap_err();
        let slow = naive::schedule(&bench.cdfg, cp - 1).unwrap_err();
        prop_assert_eq!(&fast, &slow, "error mismatch on {}", bench.name);
        prop_assert!(matches!(fast, ScheduleError::LatencyTooSmall { .. }));
    }
}

/// Every paper circuit at every Table II budget: the two kernels agree.
#[test]
fn paper_circuits_schedule_identically() {
    for bench in circuits::all_benchmarks() {
        for &steps in &bench.control_steps {
            let fast = force::schedule(&bench.cdfg, steps).expect("paper budgets are feasible");
            let slow = naive::schedule(&bench.cdfg, steps).expect("paper budgets are feasible");
            assert_eq!(fast, slow, "kernels diverged on {} at {} steps", bench.name, steps);
        }
    }
}

/// A denser sweep over one mid-sized circuit per family: every latency from
/// the critical path to critical path + 6.
#[test]
fn latency_sweep_identity_per_family() {
    for family in Family::ALL {
        let spec = spec_for(family, 20260729, 4);
        let bench = gen::generate_one(&spec, 0).expect("valid circuit");
        let cp = bench.cdfg.critical_path_length().max(1);
        for latency in cp..=cp + 6 {
            let fast = force::schedule(&bench.cdfg, latency).expect("feasible");
            let slow = naive::schedule(&bench.cdfg, latency).expect("feasible");
            assert_eq!(fast, slow, "{} diverged at latency {latency}", bench.name);
        }
    }
}

/// The Pareto explorer's warm-started full-range walk: one reused
/// workspace across the whole budget range of a circuit must produce
/// schedules bit-identical to cold per-budget runs of the naive reference,
/// on every family.
#[test]
fn warm_started_full_range_walks_match_cold_naive_runs() {
    for family in Family::ALL {
        let spec = spec_for(family, 20260729, 3);
        let bench = gen::generate_one(&spec, 0).expect("valid circuit");
        let cp = bench.cdfg.critical_path_length().max(1);
        let mut ws = force::Workspace::new();
        for latency in cp..=cp + 6 {
            let warm =
                force::schedule_with_workspace(&bench.cdfg, latency, &mut ws).expect("feasible");
            let cold = naive::schedule(&bench.cdfg, latency).expect("feasible");
            assert_eq!(warm, cold, "{} warm walk diverged at latency {latency}", bench.name);
        }
        // Reusing the workspace for a *different* circuit (here: the next
        // family's, and re-running the first latency after a whole walk)
        // must not leak state between runs either.
        let warm = force::schedule_with_workspace(&bench.cdfg, cp, &mut ws).expect("feasible");
        assert_eq!(warm, naive::schedule(&bench.cdfg, cp).expect("feasible"), "{}", bench.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomised version of the warm-walk identity across families, seeds
    /// and sizes — the acceptance gate for warm-start reuse.
    #[test]
    fn warm_walks_equal_naive_on_random_circuits(
        family in family_strategy(),
        seed in 0u64..1000,
        size in 0u8..9,
    ) {
        let spec = spec_for(family, seed, size);
        let bench = gen::generate_one(&spec, 0).expect("generator produces valid circuits");
        let cp = bench.cdfg.critical_path_length().max(1);
        let mut ws = force::Workspace::new();
        for latency in cp..=cp + 3 {
            let warm = force::schedule_with_workspace(&bench.cdfg, latency, &mut ws)
                .expect("feasible latency");
            let cold = naive::schedule(&bench.cdfg, latency).expect("feasible latency");
            prop_assert_eq!(
                &warm, &cold,
                "{} warm walk diverged at latency {}", bench.name, latency
            );
        }
    }
}
