//! Repair-identity property tests: `sched::force::repair` must produce
//! schedules **bit-identical** to a cold `sched::force::schedule` at the
//! final parameters after *every* event of an online stream — across all
//! four generated circuit families, arbitrary seeds, warm/memoized/full
//! repair paths, and workspace rebinds — and must surface the same typed
//! `ScheduleError` as a cold run when a budget tightens below the
//! critical path.
//!
//! This is the contract the online mode's wire reports rest on: if the
//! incremental repair ever drifts from cold bytes on any circuit, these
//! tests fail before any JSON does.

use std::collections::BTreeMap;

use gen::{Family, GenSpec, StreamEvent, StreamSpec};
use proptest::prelude::*;
use sched::error::ScheduleError;
use sched::{force, repair, RepairWorkspace};

/// Builds the spec for one generated circuit of the given family with
/// family-appropriate size knobs (mirrors the schedule-identity suite).
fn spec_for(family: Family, seed: u64, size: u8) -> GenSpec {
    let mut spec = GenSpec::new(family, seed, 1);
    match family {
        Family::RandomDag => {
            spec.width = 4 + u32::from(size % 3) * 4;
            spec.depth = 6 + u32::from(size / 3) * 6;
            spec.mux_permille = 250;
        }
        Family::MuxTree => spec.depth = 3 + u32::from(size % 4),
        Family::DspChain => spec.taps = 4 + u32::from(size % 5) * 4,
        Family::Cordic => spec.iters = 3 + u32::from(size % 6),
    }
    spec
}

fn family_strategy() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::RandomDag),
        Just(Family::MuxTree),
        Just(Family::DspChain),
        Just(Family::Cordic),
    ]
}

/// Replays a generated event stream at the sched layer — one warm
/// [`RepairWorkspace`] per live circuit, dropped on retirement — and
/// asserts every repaired schedule equals a cold recompute at the final
/// parameters.  Returns the number of schedule-producing events checked.
fn replay_and_check(stream: &StreamSpec) -> usize {
    let (batch, events) = gen::stream(stream).expect("stream generates");
    let pool: BTreeMap<String, cdfg::Cdfg> = batch.into_iter().map(|b| (b.name, b.cdfg)).collect();
    let mut live: BTreeMap<String, RepairWorkspace> = BTreeMap::new();
    let mut checked = 0usize;
    for event in &events {
        match event {
            StreamEvent::CircuitArrived { circuit, budget }
            | StreamEvent::BudgetChanged { circuit, budget } => {
                let cdfg = &pool[circuit];
                let rw = live.entry(circuit.clone()).or_default();
                let (result, _) = repair(cdfg, *budget, rw);
                let cold = force::schedule(cdfg, *budget);
                match (result, cold) {
                    (Ok(repaired), Ok(cold)) => {
                        assert_eq!(repaired, cold, "{circuit} diverged at budget {budget}");
                    }
                    (Err(warm_err), Err(cold_err)) => {
                        assert_eq!(warm_err, cold_err, "{circuit} error drift at {budget}");
                    }
                    (warm, cold) => {
                        panic!("{circuit} feasibility drift at {budget}: {warm:?} vs {cold:?}")
                    }
                }
                checked += 1;
            }
            StreamEvent::CircuitRetired { circuit } => {
                live.remove(circuit);
            }
            StreamEvent::ScalingChanged { .. } => {}
        }
    }
    checked
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every post-event repaired schedule across random streams of every
    /// family is bit-identical to a cold recompute at the new parameters.
    #[test]
    fn stream_repairs_equal_cold_schedules(
        family in family_strategy(),
        seed in 0u64..500,
        eseed in 0u64..500,
    ) {
        let text = format!(
            "family={},seed={seed},count=2;events=30,eseed={eseed},churn=150,rescale=100",
            family.name()
        );
        let stream = StreamSpec::parse(&text).expect("stream spec parses");
        let checked = replay_and_check(&stream);
        prop_assert!(checked > 0, "stream produced no schedule-producing events");
    }

    /// Mixed paths agree: a single warm workspace walking a budget
    /// sequence (memo hits, warm kernel runs, full-recompute fallbacks
    /// interleaved) stays equal to a *fresh* workspace's full recompute
    /// and to the cold scheduler at every step.
    #[test]
    fn mixed_repair_and_recompute_paths_agree(
        family in family_strategy(),
        seed in 0u64..500,
        size in 0u8..9,
        walk in proptest::collection::vec(0u32..6, 1..12),
    ) {
        let spec = spec_for(family, seed, size);
        let bench = gen::generate_one(&spec, 0).expect("valid circuit");
        let cp = bench.cdfg.critical_path_length().max(1);
        let mut warm = RepairWorkspace::new();
        for slack in walk {
            let budget = cp + slack;
            let (warm_result, _) = repair(&bench.cdfg, budget, &mut warm);
            let warm_schedule = warm_result.expect("feasible budget");
            let mut fresh = RepairWorkspace::new();
            let (fresh_result, fresh_stats) = repair(&bench.cdfg, budget, &mut fresh);
            prop_assert!(fresh_stats.full_recompute, "first sight always recomputes");
            let cold = force::schedule(&bench.cdfg, budget).expect("feasible budget");
            prop_assert_eq!(&warm_schedule, &cold, "warm path drifted on {}", &bench.name);
            prop_assert_eq!(
                &fresh_result.expect("feasible budget"), &cold,
                "full path drifted on {}", &bench.name
            );
        }
    }

    /// A budget that tightens below the critical path surfaces the same
    /// typed error a cold run produces — both from the warm O(1) check
    /// and from a first-sight full recompute.
    #[test]
    fn infeasible_tighten_errors_match_cold(
        family in family_strategy(),
        seed in 0u64..500,
        size in 0u8..9,
    ) {
        let spec = spec_for(family, seed, size);
        let bench = gen::generate_one(&spec, 0).expect("valid circuit");
        let cp = bench.cdfg.critical_path_length();
        prop_assert!(cp > 1, "{} has a degenerate critical path", &bench.name);
        let cold = force::schedule(&bench.cdfg, cp - 1).expect_err("sub-critical budget");
        prop_assert!(
            matches!(cold, ScheduleError::LatencyTooSmall { requested, critical_path }
                if requested == cp - 1 && critical_path == cp),
            "unexpected cold error {:?}", cold
        );
        // First sight: the full-recompute path fails like cold.
        let mut rw = RepairWorkspace::new();
        let (first, _) = repair(&bench.cdfg, cp - 1, &mut rw);
        prop_assert_eq!(first.expect_err("sub-critical budget"), cold.clone());
        // After a feasible repair seeds the invariants, the warm O(1)
        // feasibility check must produce the identical typed error.
        let (seeded, _) = repair(&bench.cdfg, cp, &mut rw);
        seeded.expect("critical path is feasible");
        let (warm, stats) = repair(&bench.cdfg, cp - 1, &mut rw);
        prop_assert_eq!(warm.expect_err("sub-critical budget"), cold);
        prop_assert_eq!(stats.nodes_touched, 0, "infeasibility check is O(1)");
    }
}

/// Deterministic cross-family sweep: longer streams with churn and
/// rescale, plus a workspace deliberately rebound across circuits
/// mid-stream — rebinding must not leak state between circuits.
#[test]
fn family_streams_and_rebinds_stay_cold_identical() {
    for family in Family::ALL {
        let text = format!(
            "family={},seed=9,count=3;events=120,eseed=13,churn=200,rescale=150",
            family.name()
        );
        let stream = StreamSpec::parse(&text).expect("stream spec parses");
        let checked = replay_and_check(&stream);
        assert!(checked >= 20, "{family}: only {checked} schedule events");
    }

    // One workspace serving two different circuits alternately: every
    // rebind drops the previous circuit's caches.
    let a = gen::generate_one(&spec_for(Family::MuxTree, 5, 2), 0).expect("valid circuit");
    let b = gen::generate_one(&spec_for(Family::DspChain, 5, 2), 0).expect("valid circuit");
    let mut rw = RepairWorkspace::new();
    for round in 0..3u32 {
        for bench in [&a, &b] {
            let budget = bench.cdfg.critical_path_length().max(1) + round;
            let (result, _) = repair(&bench.cdfg, budget, &mut rw);
            let cold = force::schedule(&bench.cdfg, budget).expect("feasible");
            assert_eq!(result.expect("feasible"), cold, "{} round {round}", bench.name);
        }
    }
}
