//! Optimality-gap property tests for the fine-grained DVS kernel: on
//! small circuits from every generator family, the greedy
//! slack-distribution kernel (`sched::dvs::distribute_slack`) must never
//! beat the exact branch-and-bound reference
//! (`sched::dvs::exact_min_energy`, the `reference` feature) — the exact
//! search is a true lower bound — and the measured gap is reported with
//! every failure so a regression shows its size, not just its sign.
//!
//! Weights come from the full power-management pipeline exactly as the
//! Pareto explorer uses it: the managed graph, fair select
//! probabilities, and the paper's operation power weights scaled by
//! activation probability.

use gen::{Family, GenSpec};
use pmsched::{power_manage, OpWeights, PowerManagementOptions, SelectProbabilities};
use power::VoltagePreset;
use proptest::prelude::*;

/// Small family specs — the exact search is exponential in the worst
/// case, so every knob stays at smoke size.
fn spec_for(family: Family, seed: u64, size: u8) -> GenSpec {
    let mut spec = GenSpec::new(family, seed, 1);
    match family {
        Family::RandomDag => {
            spec.width = 3;
            spec.depth = 4 + u32::from(size % 2);
            spec.mux_permille = 300;
        }
        Family::MuxTree => spec.depth = 2,
        Family::DspChain => spec.taps = 3 + u32::from(size % 2),
        Family::Cordic => spec.iters = 2,
    }
    spec
}

fn family_strategy() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::RandomDag),
        Just(Family::MuxTree),
        Just(Family::DspChain),
        Just(Family::Cordic),
    ]
}

fn preset_strategy() -> impl Strategy<Value = VoltagePreset> {
    prop_oneof![
        Just(VoltagePreset::TwoLevel),
        Just(VoltagePreset::ThreeLevel),
        Just(VoltagePreset::FiveLevel),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The greedy kernel is admissible: its energy never drops below the
    /// exact minimum (up to float-summation rounding), at any feasible
    /// budget, for any preset, on any family.
    #[test]
    fn greedy_kernel_never_beats_the_exact_reference(
        family in family_strategy(),
        preset in preset_strategy(),
        seed in 0u64..500,
        size in 0u8..4,
        slack in 0u32..3,
    ) {
        let spec = spec_for(family, seed, size);
        let bench = gen::generate_one(&spec, 0).expect("generator produces valid circuits");
        // Cap the exact search's input size; the smoke knobs stay under
        // this for every family, so nothing is silently skipped.
        let functional = bench.cdfg.functional_nodes().len();
        prop_assert!(functional <= 24, "spec produced {functional} functional nodes");

        let budget = bench.cdfg.critical_path_length().max(1) + slack;
        let result = power_manage(&bench.cdfg, &PowerManagementOptions::with_latency(budget))
            .expect("budget at or above the critical path is feasible");
        let probs = SelectProbabilities::fair();
        let activation = result.activation(&probs);
        let weights = OpWeights::paper_power();
        let pm = result.cdfg();
        let node_weight = |n: cdfg::NodeId| {
            let class = pm.node(n).expect("live node").op.class();
            weights.weight(class) * activation.probability(n)
        };

        let table = preset.table();
        let levels = table.slack_levels();
        let mut ws = sched::dvs::Workspace::new();
        let heur =
            sched::dvs::distribute_slack(pm, result.latency(), &levels, &node_weight, &mut ws)
                .expect("nominal assignment is feasible at this budget");
        let exact = sched::dvs::exact_min_energy(pm, result.latency(), &levels, &node_weight)
            .expect("nominal assignment is feasible at this budget");

        let tolerance = 1e-9 * exact.energy().abs().max(1.0);
        let gap_percent = if exact.energy() > 0.0 {
            (heur.energy() - exact.energy()) / exact.energy() * 100.0
        } else {
            0.0
        };
        prop_assert!(
            heur.energy() >= exact.energy() - tolerance,
            "{} budget {budget} preset {preset:?}: greedy {} beat exact {} (gap {gap_percent:.4}%)",
            bench.name, heur.energy(), exact.energy()
        );
        // At zero slack with no off-critical-path freedom the two agree;
        // in general the gap is finite and reported.
        prop_assert!(gap_percent.is_finite(), "{}: non-finite gap", bench.name);
    }
}
