//! Seeded synthetic CDFG generator: parameterized circuit families for
//! large-scale sweeps.
//!
//! The paper evaluates its scheduling transformation on four hand-built
//! Silage designs; every conclusion the reproduction can draw from those is
//! limited to four points of a huge workload space.  This crate mass-
//! produces `circuits::Benchmark`-compatible workloads — thousands per
//! minute — so the sweep engine can map where the shutdown savings hold up
//! and where they collapse:
//!
//! * [`Family::RandomDag`] — random layered DAGs with configurable
//!   width/depth/operation mix,
//! * [`Family::MuxTree`] — conditional-heavy multiplexor trees (the
//!   paper's sweet spot),
//! * [`Family::DspChain`] — FIR tap chains, IIR-style sections and
//!   butterfly ladders with conditional scaling,
//! * [`Family::Cordic`] — the paper's CORDIC rotator scaled to other
//!   iteration counts.
//!
//! # Determinism
//!
//! Generation is a pure function of the [`GenSpec`]: the only entropy
//! source is the workspace's seeded splitmix `StdRng` shim, never a clock,
//! and circuit `i` derives its private stream from `(seed, i)`.  A fixed
//! spec therefore reproduces byte-identical circuits across runs, machines
//! and thread counts — the property the sweep determinism suite pins.
//!
//! Circuit *names* embed the family, seed and every structural knob
//! (`gen-rdag-s42-w6-d8-m300-0007`), so the engine's prefix cache — which
//! keys on the circuit name — can never conflate circuits drawn from
//! different generator parameters.
//!
//! # Derived budgets
//!
//! Each generated [`circuits::Benchmark`] carries two control-step budgets
//! derived from its own critical path `cp`: the tight bound `cp` and the
//! relaxed bound `cp + 1 + cp/4`, mirroring how Table II evaluates each
//! paper circuit at its critical path and a little beyond.
//!
//! # Example
//!
//! ```
//! use gen::{Family, GenSpec};
//!
//! let spec = GenSpec::parse("family=mux-tree,seed=7,count=3").unwrap();
//! let batch = gen::generate(&spec).unwrap();
//! assert_eq!(batch.len(), 3);
//! for bench in &batch {
//!     assert!(bench.cdfg.validate().is_ok());
//!     assert_eq!(bench.control_steps[0], bench.cdfg.critical_path_length());
//! }
//! assert_eq!(spec.family, Family::MuxTree);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod events;
pub mod families;
pub mod spec;

use circuits::Benchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use crate::error::GenError;
pub use crate::events::{stream, Scaling, StreamEvent, StreamSpec};
pub use crate::spec::{Family, GenSpec};

/// Mixes the batch seed with a circuit index into an independent stream
/// seed (splitmix-style finalizer, matching the `StdRng` shim's quality).
pub(crate) fn stream_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

/// Control-step budgets for a circuit with critical path `cp`: the tight
/// bound and one relaxed bound, like the paper's Table II pairs.
fn derived_budgets(cp: u32) -> Vec<u32> {
    vec![cp, cp + 1 + cp / 4]
}

/// Generates circuit `index` of the spec's batch.
///
/// # Errors
///
/// Returns [`GenError::InvalidCircuit`] if the produced graph fails CDFG
/// validation (a generator bug; the property suite keeps this unreachable).
pub fn generate_one(spec: &GenSpec, index: usize) -> Result<Benchmark, GenError> {
    let name = spec.circuit_name(index);
    let mut rng = StdRng::seed_from_u64(stream_seed(spec.seed, index));
    let cdfg = match spec.family {
        Family::RandomDag => {
            families::random_dag(&name, &mut rng, spec.width, spec.depth, spec.mux_permille)
        }
        Family::MuxTree => families::mux_tree(&name, &mut rng, spec.depth),
        Family::DspChain => families::dsp_chain(&name, &mut rng, spec.taps, index),
        // No wrap-around: circuit `i` runs `iters + i` iterations, so every
        // batch member is structurally distinct (GenSpec::validate caps the
        // count so the largest variant stays within the iters knob range).
        Family::Cordic => circuits::cordic_named(&name, spec.iters + index as u32, false),
    };
    cdfg.validate()
        .map_err(|e| GenError::InvalidCircuit { name: name.clone(), message: e.to_string() })?;
    let control_steps = derived_budgets(cdfg.critical_path_length());
    Ok(Benchmark { name, cdfg, control_steps })
}

/// Generates the spec's whole batch, in index order.
///
/// # Errors
///
/// Rejects invalid knobs ([`GenSpec::validate`]) and propagates
/// [`generate_one`] failures.
pub fn generate(spec: &GenSpec) -> Result<Vec<Benchmark>, GenError> {
    spec.validate()?;
    (0..spec.count).map(|i| generate_one(spec, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_honours_count_and_names_in_order() {
        let spec = GenSpec::new(Family::RandomDag, 42, 5);
        let batch = generate(&spec).unwrap();
        assert_eq!(batch.len(), 5);
        for (i, bench) in batch.iter().enumerate() {
            assert_eq!(bench.name, spec.circuit_name(i));
            assert_eq!(bench.name, bench.cdfg.name(), "benchmark and CDFG names agree");
        }
    }

    #[test]
    fn budgets_start_at_the_critical_path() {
        for family in Family::ALL {
            let spec = GenSpec::new(family, 3, 2);
            for bench in generate(&spec).unwrap() {
                let cp = bench.cdfg.critical_path_length();
                assert_eq!(bench.control_steps[0], cp, "{}", bench.name);
                assert!(bench.control_steps[1] > cp, "{}", bench.name);
            }
        }
    }

    #[test]
    fn cordic_batch_scales_iterations_with_the_index() {
        let spec = GenSpec::new(Family::Cordic, 0, 3);
        let batch = generate(&spec).unwrap();
        let mux_counts: Vec<usize> = batch.iter().map(|b| b.cdfg.op_counts().mux).collect();
        // iters 4, 5, 6 → 3 muxes per iteration.
        assert_eq!(mux_counts, vec![12, 15, 18]);
    }

    #[test]
    fn sibling_circuits_differ_but_reruns_do_not() {
        let spec = GenSpec::new(Family::RandomDag, 11, 2);
        let a = generate(&spec).unwrap();
        let b = generate(&spec).unwrap();
        assert_eq!(
            cdfg::dot::to_dot(&a[0].cdfg),
            cdfg::dot::to_dot(&b[0].cdfg),
            "same spec, same bytes"
        );
        assert_ne!(
            cdfg::dot::to_dot(&a[0].cdfg).replace(&a[0].name, ""),
            cdfg::dot::to_dot(&a[1].cdfg).replace(&a[1].name, ""),
            "different indices draw different structures"
        );
    }

    #[test]
    fn stream_seed_spreads_adjacent_indices() {
        let s0 = stream_seed(42, 0);
        let s1 = stream_seed(42, 1);
        assert_ne!(s0, s1);
        assert_ne!(s0 ^ s1, 1, "not just the low bit");
    }
}
