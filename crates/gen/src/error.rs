//! Generator errors.

use std::fmt;

/// Everything that can go wrong while parsing a spec or generating a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The spec named a family the generator does not know.
    UnknownFamily(String),
    /// The spec text was not `key=value[,key=value...]` or used an unknown
    /// key or a non-numeric value.
    MalformedSpec(String),
    /// A knob was outside its allowed range.
    InvalidKnob(String),
    /// A generated graph failed structural validation — a generator bug,
    /// surfaced instead of panicking so sweeps degrade gracefully.
    InvalidCircuit {
        /// Name of the offending circuit.
        name: String,
        /// The underlying CDFG validation message.
        message: String,
    },
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::UnknownFamily(name) => write!(
                f,
                "unknown circuit family `{name}` (expected random-dag, mux-tree, dsp-chain or cordic)"
            ),
            GenError::MalformedSpec(detail) => write!(f, "malformed generator spec: {detail}"),
            GenError::InvalidKnob(knob) => write!(f, "generator knob out of range: {knob}"),
            GenError::InvalidCircuit { name, message } => {
                write!(f, "generated circuit `{name}` is structurally invalid: {message}")
            }
        }
    }
}

impl std::error::Error for GenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        assert!(GenError::UnknownFamily("x".into()).to_string().contains("random-dag"));
        assert!(GenError::InvalidKnob("width".into()).to_string().contains("width"));
        let e = GenError::InvalidCircuit { name: "c".into(), message: "m".into() };
        assert!(e.to_string().contains("`c`"));
    }
}
