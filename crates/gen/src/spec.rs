//! Generator specifications: which family, how many circuits, which knobs.
//!
//! A [`GenSpec`] fully determines a batch of circuits: two specs with equal
//! fields produce byte-identical CDFGs.  The textual form parsed by
//! [`GenSpec::parse`] is the `--gen` argument of the `sweep` binary:
//!
//! ```text
//! family=<name>,seed=<u64>,count=<n>[,width=<n>][,depth=<n>][,mux=<permille>]
//!                                   [,taps=<n>][,iters=<n>]
//! ```

use std::fmt;

use crate::error::GenError;

/// The circuit families the generator knows how to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Random layered DAGs with a configurable width, depth and operation
    /// mix (the general-population workload).
    RandomDag,
    /// Conditional-heavy multiplexor trees — the paper's sweet spot, where
    /// most of the datapath sits inside shutdownable branches.
    MuxTree,
    /// DSP-like kernels: FIR tap chains, IIR-style biquad sections and
    /// butterfly stages with conditional scaling.
    DspChain,
    /// Scaled CORDIC rotators (the paper's `cordic` at other iteration
    /// counts).
    Cordic,
}

impl Family {
    /// Every family, in canonical order.
    pub const ALL: [Family; 4] =
        [Family::RandomDag, Family::MuxTree, Family::DspChain, Family::Cordic];

    /// The stable textual name used in specs, circuit names and reports.
    pub fn name(self) -> &'static str {
        match self {
            Family::RandomDag => "random-dag",
            Family::MuxTree => "mux-tree",
            Family::DspChain => "dsp-chain",
            Family::Cordic => "cordic",
        }
    }

    /// Parses a family name.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::UnknownFamily`] for anything but the four
    /// canonical names.
    pub fn parse(name: &str) -> Result<Self, GenError> {
        Family::ALL
            .into_iter()
            .find(|f| f.name() == name)
            .ok_or_else(|| GenError::UnknownFamily(name.to_owned()))
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully parameterized request for a batch of generated circuits.
///
/// Circuit names embed the family, the seed and every structural knob, so
/// two different specs can never collide in the engine's circuit registry or
/// its prefix cache — the cache key (the circuit name) incorporates the
/// generator parameters by construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GenSpec {
    /// Which family to draw from.
    pub family: Family,
    /// Base seed; circuit `i` of the batch derives its own stream from
    /// `(seed, i)`.
    pub seed: u64,
    /// How many circuits to generate.
    pub count: usize,
    /// Nodes per layer (random-dag only).
    pub width: u32,
    /// Layers (random-dag) or tree depth (mux-tree).
    pub depth: u32,
    /// Probability, in permille, that a random-dag node is a multiplexor.
    pub mux_permille: u16,
    /// Taps per DSP kernel (dsp-chain only).
    pub taps: u32,
    /// Base iteration count (cordic only); circuit `i` runs `iters + i`
    /// iterations, so every batch member is structurally distinct and the
    /// batch size is capped at `49 - iters` (the largest variant must stay
    /// within the knob's own 48-iteration ceiling).
    pub iters: u32,
}

impl GenSpec {
    /// A spec with every knob at its family default.
    ///
    /// The mux-tree depth defaults lower than the random-dag depth because
    /// the tree holds `2^depth` leaves: depth 4 (15 multiplexors) is in the
    /// size class of the paper's circuits, while depth 8 would be a
    /// 255-multiplexor monster.
    pub fn new(family: Family, seed: u64, count: usize) -> Self {
        GenSpec {
            family,
            seed,
            count,
            width: 6,
            depth: if family == Family::MuxTree { 4 } else { 8 },
            mux_permille: 300,
            taps: 8,
            iters: 4,
        }
    }

    /// Parses the `--gen` argument syntax (see the module documentation).
    ///
    /// `family`, `seed` and `count` are required — the grammar brackets
    /// only the family knobs as optional, and silently defaulting the seed
    /// or the batch size would turn a typo into a quiet wrong-sized run.
    ///
    /// # Errors
    ///
    /// Rejects missing `family`/`seed`/`count`, unknown families and keys,
    /// malformed numbers, and knob values outside their sane ranges.
    pub fn parse(text: &str) -> Result<Self, GenError> {
        let mut fields = Vec::new();
        for field in text.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            fields.push(
                field.split_once('=').ok_or_else(|| {
                    GenError::MalformedSpec(format!("`{field}` is not key=value"))
                })?,
            );
        }
        // The family decides the knob defaults, so resolve it first
        // regardless of where it appears in the text.
        let family = fields
            .iter()
            .find(|&&(key, _)| key == "family")
            .map(|&(_, value)| Family::parse(value))
            .ok_or_else(|| GenError::MalformedSpec("missing `family=<name>`".to_owned()))??;
        let mut spec = GenSpec::new(family, 0, 10);
        let (mut seed_given, mut count_given) = (false, false);
        for (key, value) in fields {
            let bad = |_| GenError::MalformedSpec(format!("`{value}` is not a number ({key})"));
            match key {
                "family" => {}
                "seed" => {
                    spec.seed = value.parse().map_err(bad)?;
                    seed_given = true;
                }
                "count" => {
                    spec.count = value.parse().map_err(bad)?;
                    count_given = true;
                }
                "width" => spec.width = value.parse().map_err(bad)?,
                "depth" => spec.depth = value.parse().map_err(bad)?,
                "mux" => spec.mux_permille = value.parse().map_err(bad)?,
                "taps" => spec.taps = value.parse().map_err(bad)?,
                "iters" => spec.iters = value.parse().map_err(bad)?,
                other => return Err(GenError::MalformedSpec(format!("unknown key `{other}`"))),
            }
        }
        if !seed_given {
            return Err(GenError::MalformedSpec("missing `seed=<u64>`".to_owned()));
        }
        if !count_given {
            return Err(GenError::MalformedSpec("missing `count=<n>`".to_owned()));
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks every knob against its allowed range.
    ///
    /// The mux-tree depth is capped harder than the layer depth because a
    /// tree of depth `d` holds `2^d - 1` multiplexors: depth 6 (63 muxes)
    /// already exceeds the paper's largest circuit.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::InvalidKnob`] naming the offending knob.
    pub fn validate(&self) -> Result<(), GenError> {
        let depth_ok = if self.family == Family::MuxTree {
            (1..=6).contains(&self.depth)
        } else {
            (1..=64).contains(&self.depth)
        };
        // Cordic variants are fully determined by their iteration count, so
        // a batch can hold at most `49 - iters` structurally distinct
        // circuits; a larger count would silently duplicate work under
        // fresh names (defeating the engine's cache and skewing per-family
        // statistics).
        let count_cap = if self.family == Family::Cordic {
            49usize.saturating_sub(self.iters as usize)
        } else {
            100_000
        };
        let checks: [(&str, bool); 6] = [
            ("count (1..=100000; 1..=49-iters for cordic)", (1..=count_cap).contains(&self.count)),
            ("width (1..=64)", (1..=64).contains(&self.width)),
            ("depth (1..=64; 1..=6 for mux-tree)", depth_ok),
            ("mux (0..=1000)", self.mux_permille <= 1000),
            ("taps (2..=64)", (2..=64).contains(&self.taps)),
            ("iters (1..=48)", (1..=48).contains(&self.iters)),
        ];
        for (knob, ok) in checks {
            if !ok {
                return Err(GenError::InvalidKnob(knob.to_owned()));
            }
        }
        Ok(())
    }

    /// The shared name prefix of every circuit this spec generates; the
    /// per-circuit name appends a zero-padded index.  Only the knobs that
    /// shape the family appear, so the name is a faithful cache key.
    pub fn name_prefix(&self) -> String {
        match self.family {
            Family::RandomDag => format!(
                "gen-rdag-s{}-w{}-d{}-m{}",
                self.seed, self.width, self.depth, self.mux_permille
            ),
            Family::MuxTree => format!("gen-mtree-s{}-d{}", self.seed, self.depth),
            Family::DspChain => format!("gen-dsp-s{}-t{}", self.seed, self.taps),
            Family::Cordic => format!("gen-cordic-i{}", self.iters),
        }
    }

    /// The name of circuit `index` of this spec's batch.
    pub fn circuit_name(&self, index: usize) -> String {
        format!("{}-{index:04}", self.name_prefix())
    }

    /// The lossless textual form: every knob spelled out, parseable back by
    /// [`GenSpec::parse`] into an equal spec.  `Display` stays the compact
    /// family/seed/count form for logs; this is the form to put on a wire
    /// (the sweep service ships specs as these strings).
    pub fn spec_string(&self) -> String {
        format!(
            "family={},seed={},count={},width={},depth={},mux={},taps={},iters={}",
            self.family,
            self.seed,
            self.count,
            self.width,
            self.depth,
            self.mux_permille,
            self.taps,
            self.iters
        )
    }
}

impl fmt::Display for GenSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "family={},seed={},count={}", self.family, self.seed, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let spec = GenSpec::parse("family=random-dag,seed=42,count=250").unwrap();
        assert_eq!(spec.family, Family::RandomDag);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.count, 250);
        assert_eq!(spec.width, 6, "default width");
    }

    #[test]
    fn parses_every_knob_and_tolerates_spaces() {
        let spec = GenSpec::parse(
            "family=dsp-chain, seed=7, count=3, taps=12, width=9, depth=5, mux=500, iters=6",
        )
        .unwrap();
        assert_eq!(spec.taps, 12);
        assert_eq!(spec.width, 9);
        assert_eq!(spec.mux_permille, 500);
    }

    #[test]
    fn rejects_unknown_families_keys_and_bad_numbers() {
        assert!(matches!(GenSpec::parse("family=nope"), Err(GenError::UnknownFamily(_))));
        assert!(matches!(GenSpec::parse("family=cordic,bogus=1"), Err(GenError::MalformedSpec(_))));
        assert!(matches!(
            GenSpec::parse("family=cordic,seed=xyz"),
            Err(GenError::MalformedSpec(_))
        ));
        assert!(matches!(GenSpec::parse("seed=3"), Err(GenError::MalformedSpec(_))));
    }

    #[test]
    fn seed_and_count_are_required() {
        let missing_seed = GenSpec::parse("family=random-dag,count=5").unwrap_err();
        assert!(missing_seed.to_string().contains("seed"), "{missing_seed}");
        let missing_count = GenSpec::parse("family=random-dag,seed=5").unwrap_err();
        assert!(missing_count.to_string().contains("count"), "{missing_count}");
        assert!(GenSpec::parse("family=random-dag,seed=5,count=5").is_ok());
    }

    #[test]
    fn rejects_out_of_range_knobs() {
        assert!(matches!(
            GenSpec::parse("family=random-dag,seed=1,count=0"),
            Err(GenError::InvalidKnob(_))
        ));
        assert!(matches!(
            GenSpec::parse("family=random-dag,seed=1,count=1,width=65"),
            Err(GenError::InvalidKnob(_))
        ));
        assert!(matches!(
            GenSpec::parse("family=cordic,seed=1,count=1,iters=49"),
            Err(GenError::InvalidKnob(_))
        ));
        assert!(matches!(
            GenSpec::parse("family=mux-tree,seed=1,count=1,depth=7"),
            Err(GenError::InvalidKnob(_))
        ));
        assert!(
            GenSpec::parse("family=random-dag,seed=1,count=1,depth=7").is_ok(),
            "layer depth 7 is fine"
        );
    }

    #[test]
    fn cordic_count_is_capped_at_the_distinct_variants() {
        // iters=4 leaves room for iterations 4..=48: 45 distinct circuits.
        assert!(GenSpec::parse("family=cordic,seed=1,count=45").is_ok());
        assert!(matches!(
            GenSpec::parse("family=cordic,seed=1,count=46"),
            Err(GenError::InvalidKnob(_))
        ));
        assert!(matches!(
            GenSpec::parse("family=cordic,seed=1,count=2,iters=48"),
            Err(GenError::InvalidKnob(_))
        ));
        assert!(GenSpec::parse("family=cordic,seed=1,count=1,iters=48").is_ok());
    }

    #[test]
    fn mux_tree_defaults_to_a_paper_sized_depth() {
        assert_eq!(GenSpec::new(Family::MuxTree, 0, 1).depth, 4);
        assert_eq!(GenSpec::new(Family::RandomDag, 0, 1).depth, 8);
        assert_eq!(GenSpec::parse("family=mux-tree,seed=0,count=1").map(|s| s.depth), Ok(4));
    }

    #[test]
    fn circuit_names_embed_family_seed_and_knobs() {
        let spec = GenSpec::parse("family=random-dag,seed=42,count=2").unwrap();
        assert_eq!(spec.circuit_name(7), "gen-rdag-s42-w6-d8-m300-0007");
        let other = GenSpec::parse("family=random-dag,seed=43,count=2").unwrap();
        assert_ne!(spec.circuit_name(0), other.circuit_name(0), "seed is part of the key");
        let wider = GenSpec::parse("family=random-dag,seed=42,count=2,width=7").unwrap();
        assert_ne!(spec.circuit_name(0), wider.circuit_name(0), "knobs are part of the key");
    }

    #[test]
    fn spec_string_roundtrips_every_knob() {
        for family in Family::ALL {
            let mut spec = GenSpec::new(family, u64::MAX, 3);
            spec.width = 9;
            spec.mux_permille = 450;
            spec.taps = 5;
            let reparsed = GenSpec::parse(&spec.spec_string()).unwrap();
            assert_eq!(reparsed, spec, "{}", spec.spec_string());
        }
        // Display stays compact (and lossy) — spec_string is the wire form.
        let spec = GenSpec::parse("family=random-dag,seed=1,count=2,width=9").unwrap();
        assert!(!spec.to_string().contains("width"));
        assert!(spec.spec_string().contains("width=9"));
    }

    #[test]
    fn family_roundtrips_through_its_name() {
        for family in Family::ALL {
            assert_eq!(Family::parse(family.name()).unwrap(), family);
        }
    }
}
