//! The circuit-family builders.
//!
//! Every builder is a pure function of its `StdRng` stream and its knobs:
//! the only entropy source is the seeded splitmix generator, so a fixed
//! `(seed, index, knobs)` triple always reproduces the same CDFG, node for
//! node and edge for edge.

use cdfg::{Cdfg, CdfgBuilder, NodeId, Op};
use rand::rngs::StdRng;
use rand::Rng;

/// Uniformly picks one element of a non-empty slice.
fn pick(rng: &mut StdRng, items: &[NodeId]) -> NodeId {
    items[rng.gen_range(0usize..items.len())]
}

/// Adds primary outputs for every functional node nothing consumes, so the
/// finished graph has no dangling computations.  Returns the output count.
fn emit_sinks(b: &mut CdfgBuilder) -> usize {
    let sinks: Vec<NodeId> = b
        .cdfg()
        .functional_nodes()
        .into_iter()
        .filter(|&n| b.cdfg().data_successors(n).is_empty())
        .collect();
    for (i, sink) in sinks.iter().enumerate() {
        b.output(&format!("o{i}"), *sink).expect("fresh output name");
    }
    sinks.len()
}

/// A random layered DAG.
///
/// Each of `depth` layers adds `width` nodes whose operands are drawn from
/// everything built so far.  `mux_permille` of the nodes are multiplexors
/// (their selects come from a pool of comparators, grown on demand); the
/// rest split between comparators and an add/sub/mul mix.  Every
/// consumer-less node becomes a primary output.
pub fn random_dag(name: &str, rng: &mut StdRng, width: u32, depth: u32, mux_permille: u16) -> Cdfg {
    let mut b = CdfgBuilder::new(name);
    let mut values: Vec<NodeId> = (0..width.max(2)).map(|i| b.input(&format!("i{i}"))).collect();
    let mut conds: Vec<NodeId> = Vec::new();

    for _layer in 0..depth {
        let mut fresh: Vec<NodeId> = Vec::new();
        for _slot in 0..width {
            let roll: u16 = rng.gen_range(0u16..1000);
            if roll < mux_permille {
                // A multiplexor; grow the comparator pool first if empty.
                if conds.is_empty() {
                    let a = pick(rng, &values);
                    let c = pick(rng, &values);
                    conds.push(b.gt(a, c).expect("comparator operands"));
                }
                let sel = pick(rng, &conds);
                let lo = pick(rng, &values);
                let hi = pick(rng, &values);
                fresh.push(b.mux(sel, lo, hi).expect("mux operands"));
            } else if roll < mux_permille.saturating_add(120) {
                let a = pick(rng, &values);
                let c = pick(rng, &values);
                conds.push(b.gt(a, c).expect("comparator operands"));
            } else {
                let a = pick(rng, &values);
                let c = pick(rng, &values);
                // Arithmetic mix weighted towards the cheap operations,
                // with enough multipliers to make shutdown worthwhile.
                let node = match rng.gen_range(0u16..11) {
                    0..=4 => b.add(a, c),
                    5..=8 => b.sub(a, c),
                    _ => b.mul(a, c),
                }
                .expect("arithmetic operands");
                fresh.push(node);
            }
        }
        values.extend(fresh);
    }
    emit_sinks(&mut b);
    b.finish().expect("random dag is structurally valid")
}

/// A conditional-heavy multiplexor tree of the given depth.
///
/// `2^depth` small arithmetic leaves are selected through a complete binary
/// tree of multiplexors; each tree level shares one fresh comparator (a
/// nested if/else ladder), so almost the whole datapath sits inside
/// mutually exclusive, shutdownable branches — the structure the paper's
/// transformation exploits best.
pub fn mux_tree(name: &str, rng: &mut StdRng, depth: u32) -> Cdfg {
    let mut b = CdfgBuilder::new(name);
    let n_inputs = 4 + rng.gen_range(0u32..3);
    let inputs: Vec<NodeId> = (0..n_inputs).map(|i| b.input(&format!("i{i}"))).collect();

    let leaves = 1usize << depth.min(6);
    let mut level: Vec<NodeId> = (0..leaves)
        .map(|_| {
            let a = pick(rng, &inputs);
            let c = pick(rng, &inputs);
            match rng.gen_range(0u16..10) {
                0..=3 => b.add(a, c),
                4..=6 => b.sub(a, c),
                _ => b.mul(a, c),
            }
            .expect("leaf operands")
        })
        .collect();

    while level.len() > 1 {
        let a = pick(rng, &inputs);
        let c = pick(rng, &inputs);
        let sel = b.gt(a, c).expect("level comparator");
        level =
            level.chunks(2).map(|pair| b.mux(sel, pair[0], pair[1]).expect("tree mux")).collect();
    }
    b.output("root", level[0]).expect("root output");
    // Every node is consumed by construction: leaves and level comparators
    // feed the tree muxes, interior muxes the next level, and the root the
    // output just added — so sink emission has provably nothing to do here
    // (debug builds assert that instead of paying for the scan).
    debug_assert_eq!(emit_sinks(&mut b), 0, "mux tree left a dangling node");
    b.finish().expect("mux tree is structurally valid")
}

/// A DSP-like kernel; `index mod 3` cycles through an FIR tap chain, an
/// IIR-style section and a butterfly ladder so one spec covers all three.
pub fn dsp_chain(name: &str, rng: &mut StdRng, taps: u32, index: usize) -> Cdfg {
    match index % 3 {
        0 => fir(name, rng, taps),
        1 => iir(name, rng, taps),
        _ => butterfly(name, rng, taps),
    }
}

/// FIR filter: per-tap constant multiplies, an accumulation chain, and a
/// conditional saturation stage on the way out.
fn fir(name: &str, rng: &mut StdRng, taps: u32) -> Cdfg {
    let mut b = CdfgBuilder::new(name);
    let xs: Vec<NodeId> = (0..taps).map(|i| b.input(&format!("x{i}"))).collect();
    let mut acc: Option<NodeId> = None;
    for &x in &xs {
        let coeff = b.constant(rng.gen_range(1i64..32));
        let prod = b.mul(coeff, x).expect("tap product");
        acc = Some(match acc {
            None => prod,
            Some(sum) => b.add(sum, prod).expect("tap accumulate"),
        });
    }
    let sum = acc.expect("at least two taps");
    let limit = b.constant(rng.gen_range(64i64..256));
    let over = b.gt(sum, limit).expect("saturation compare");
    let clamped = b.mux(over, sum, limit).expect("saturation mux");
    b.output("y", clamped).expect("output");
    b.finish().expect("fir is structurally valid")
}

/// IIR-style section: a feed-forward and a feedback half (previous outputs
/// arrive as primary inputs — one iteration of the recurrence), plus a
/// bypass multiplexor driven by an enable comparison.
fn iir(name: &str, rng: &mut StdRng, taps: u32) -> Cdfg {
    let mut b = CdfgBuilder::new(name);
    let x = b.input("x");
    // Exactly `taps` multiply/accumulate taps in total: ceil on the
    // feed-forward half, floor on the feedback half.
    let forward = taps.div_ceil(2);
    let feedback = (taps / 2).max(1);

    let mut acc = x;
    for i in 0..forward {
        let state = b.input(&format!("x{}", i + 1));
        let coeff = b.constant(rng.gen_range(1i64..16));
        let prod = b.mul(coeff, state).expect("forward product");
        acc = b.add(acc, prod).expect("forward accumulate");
    }
    for i in 0..feedback {
        let state = b.input(&format!("y{}", i + 1));
        let coeff = b.constant(rng.gen_range(1i64..16));
        let prod = b.mul(coeff, state).expect("feedback product");
        acc = b.sub(acc, prod).expect("feedback subtract");
    }
    let threshold = b.constant(rng.gen_range(1i64..32));
    let enabled = b.ge(x, threshold).expect("enable compare");
    let out = b.mux(enabled, x, acc).expect("bypass mux");
    b.output("y", out).expect("output");
    b.finish().expect("iir is structurally valid")
}

/// Butterfly ladder: FFT-style `(a+b, a-b)` stages over a power-of-two
/// vector, with a conditional right-shift (block-floating-point style
/// overflow scaling) between stages.
fn butterfly(name: &str, rng: &mut StdRng, taps: u32) -> Cdfg {
    let mut b = CdfgBuilder::new(name);
    let lanes = (taps.next_power_of_two()).clamp(4, 16) as usize;
    let mut values: Vec<NodeId> = (0..lanes).map(|i| b.input(&format!("a{i}"))).collect();
    let one = b.constant(1);
    let stages = 2 + (lanes.trailing_zeros() % 2);

    for _stage in 0..stages {
        let mut next = Vec::with_capacity(values.len());
        for pair in values.chunks(2) {
            let sum = b.add(pair[0], pair[1]).expect("butterfly sum");
            let diff = b.sub(pair[0], pair[1]).expect("butterfly diff");
            next.push(sum);
            next.push(diff);
        }
        // Conditional scaling: if the first lane overflows a random limit,
        // every lane is shifted right one bit.
        let limit = b.constant(rng.gen_range(128i64..1024));
        let ovf = b.gt(next[0], limit).expect("overflow compare");
        values = next
            .into_iter()
            .map(|v| {
                let scaled = b.op(Op::Shr, &[v, one]).expect("scale shift");
                b.mux(ovf, v, scaled).expect("scale mux")
            })
            .collect();
    }
    for (i, v) in values.iter().enumerate() {
        b.output(&format!("y{i}"), *v).expect("lane output");
    }
    b.finish().expect("butterfly is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_dag_has_the_requested_shape_knobs() {
        let g = random_dag("t", &mut rng(1), 6, 8, 300);
        g.validate().unwrap();
        let counts = g.op_counts();
        assert!(counts.mux > 0, "mux density 300 produces multiplexors");
        assert!(counts.comp > 0);
        assert!(g.critical_path_length() >= 1);
    }

    #[test]
    fn random_dag_with_zero_mux_density_has_no_muxes() {
        let g = random_dag("t", &mut rng(2), 4, 4, 0);
        assert_eq!(g.op_counts().mux, 0);
    }

    #[test]
    fn mux_tree_is_mux_dominated() {
        let g = mux_tree("t", &mut rng(3), 4);
        g.validate().unwrap();
        let counts = g.op_counts();
        // 2^4 leaves need 15 tree muxes over 4 shared level comparators.
        assert!(counts.mux >= 15);
        assert!(counts.mux > counts.add + counts.sub, "conditional-heavy by construction");
    }

    #[test]
    fn dsp_variants_cycle_by_index() {
        let fir = dsp_chain("f", &mut rng(4), 8, 0);
        let iir = dsp_chain("i", &mut rng(4), 8, 1);
        let bfly = dsp_chain("b", &mut rng(4), 8, 2);
        for g in [&fir, &iir, &bfly] {
            g.validate().unwrap();
        }
        assert_eq!(fir.op_counts().mul, 8, "one multiplier per FIR tap");
        assert!(iir.op_counts().sub > 0, "feedback half subtracts");
        assert!(bfly.op_counts().mux >= 8, "conditional scaling muxes");
    }

    #[test]
    fn builders_are_deterministic_for_equal_streams() {
        let a = random_dag("t", &mut rng(9), 5, 5, 250);
        let b = random_dag("t", &mut rng(9), 5, 5, 250);
        assert_eq!(cdfg::dot::to_dot(&a), cdfg::dot::to_dot(&b));
    }
}
