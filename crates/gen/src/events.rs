//! Seeded deterministic event streams for the online power-management
//! mode.
//!
//! An offline sweep schedules a fixed matrix once; the online mode treats
//! power management as a long-running session where latency budgets and
//! the set of live circuits change mid-flight.  This module turns a
//! [`StreamSpec`] — a [`GenSpec`] circuit pool plus stream knobs — into a
//! reproducible sequence of [`StreamEvent`]s:
//!
//! * [`StreamEvent::CircuitArrived`] / [`StreamEvent::CircuitRetired`] —
//!   churn of the live set, drawn from the spec's generated batch,
//! * [`StreamEvent::BudgetChanged`] — a reflecting ±1 step of one live
//!   circuit's latency budget inside `[cp, cp + span]`,
//! * [`StreamEvent::ScalingChanged`] — one live circuit's delay-scaling
//!   law cycles to the next one.
//!
//! # Determinism
//!
//! The stream is a pure function of the spec: circuits come from the
//! seeded generator, and the event sequence is drawn from its own
//! splitmix-seeded stream (`eseed`), so a fixed spec reproduces
//! byte-identical events across runs, machines and thread counts — the
//! same contract every other generator in this crate carries.  Budget
//! walks reflect at their window bounds, so long streams revisit budgets
//! often; that is what makes incremental repair measurably cheaper than
//! recomputation and is deliberately the common case, mirroring real
//! power managers that dither around a setpoint.

use std::fmt;

use circuits::Benchmark;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::GenError;
use crate::spec::GenSpec;
use crate::stream_seed;

/// Delay-scaling laws an online session can switch between.  This mirrors
/// `power::dvs::DelayScaling` without depending on the power crate — the
/// generator layer only names the law; the engine maps it onto the energy
/// model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scaling {
    /// No scaling: nominal energy regardless of slack (the paper's model).
    #[default]
    None,
    /// Energy inversely proportional to allotted delay (`1/d`).
    Linear,
    /// Energy inversely proportional to squared delay (`1/d²`).
    Quadratic,
}

impl Scaling {
    /// Every law, in increasing aggressiveness.
    pub const ALL: [Scaling; 3] = [Scaling::None, Scaling::Linear, Scaling::Quadratic];

    /// Short stable label used in event records and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Scaling::None => "none",
            Scaling::Linear => "linear",
            Scaling::Quadratic => "quadratic",
        }
    }

    /// Parses a label produced by [`Scaling::label`].
    pub fn parse(text: &str) -> Option<Self> {
        Scaling::ALL.into_iter().find(|s| s.label() == text)
    }

    /// The next law in the [`Scaling::ALL`] cycle — what a
    /// [`StreamEvent::ScalingChanged`] event switches a circuit to, so a
    /// rescale event always changes something.
    pub fn next(self) -> Self {
        match self {
            Scaling::None => Scaling::Linear,
            Scaling::Linear => Scaling::Quadratic,
            Scaling::Quadratic => Scaling::None,
        }
    }
}

impl fmt::Display for Scaling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One event of an online session, in stream order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// A circuit joins the live set with an initial latency budget (its
    /// critical path — the tightest feasible setpoint) and nominal scaling.
    CircuitArrived {
        /// Name of the arriving circuit (a member of the spec's batch).
        circuit: String,
        /// Initial latency budget in control steps.
        budget: u32,
    },
    /// A live circuit leaves the session; its warm state is dropped.
    CircuitRetired {
        /// Name of the retiring circuit.
        circuit: String,
    },
    /// A live circuit's latency budget steps by one control step.
    BudgetChanged {
        /// Name of the affected circuit.
        circuit: String,
        /// The new latency budget in control steps.
        budget: u32,
    },
    /// A live circuit's delay-scaling law cycles to the next one.
    ScalingChanged {
        /// Name of the affected circuit.
        circuit: String,
        /// The new scaling law.
        scaling: Scaling,
    },
}

impl StreamEvent {
    /// The circuit the event concerns.
    pub fn circuit(&self) -> &str {
        match self {
            StreamEvent::CircuitArrived { circuit, .. }
            | StreamEvent::CircuitRetired { circuit }
            | StreamEvent::BudgetChanged { circuit, .. }
            | StreamEvent::ScalingChanged { circuit, .. } => circuit,
        }
    }

    /// Short stable label of the event kind ("arrive", "retire", "budget",
    /// "scaling"), used in record JSON and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            StreamEvent::CircuitArrived { .. } => "arrive",
            StreamEvent::CircuitRetired { .. } => "retire",
            StreamEvent::BudgetChanged { .. } => "budget",
            StreamEvent::ScalingChanged { .. } => "scaling",
        }
    }
}

/// A fully parameterized request for an event stream: the circuit pool and
/// the stream knobs.  Two equal specs produce byte-identical circuits and
/// events.
///
/// The textual form parsed by [`StreamSpec::parse`] is the `--online`
/// argument of `sweepctl` and the experiment binaries: a [`GenSpec`] and
/// the stream knobs, separated by a semicolon:
///
/// ```text
/// family=<name>,seed=<u64>,count=<n>[,<gen knobs>];
///     events=<n>,eseed=<u64>[,span=<n>][,churn=<permille>][,rescale=<permille>]
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamSpec {
    /// The circuit pool events draw from.
    pub gen: GenSpec,
    /// How many events the stream holds.
    pub events: usize,
    /// Budget-walk window above each circuit's critical path, in control
    /// steps; 0 means "use the circuit's own derived relaxed bound"
    /// (`1 + cp/4`, the spread Table II uses).
    pub span: u32,
    /// Probability, in permille, that an event churns the live set
    /// (arrival or retirement).
    pub churn_permille: u16,
    /// Probability, in permille, that an event changes a scaling law.
    pub rescale_permille: u16,
    /// Seed of the event stream, independent of the circuit seed so the
    /// same pool can be driven through different sessions.
    pub eseed: u64,
}

impl StreamSpec {
    /// A stream over `gen`'s batch with every knob at its default: 10%
    /// churn, 10% rescales, the rest budget steps over each circuit's
    /// derived window.
    pub fn new(gen: GenSpec, events: usize, eseed: u64) -> Self {
        StreamSpec { gen, events, span: 0, churn_permille: 100, rescale_permille: 100, eseed }
    }

    /// Parses the `--online` argument syntax (see the type documentation).
    /// `events` and `eseed` are required, like the generator's `seed` and
    /// `count` — silently defaulting either would turn a typo into a quiet
    /// wrong-shaped session.
    ///
    /// # Errors
    ///
    /// Rejects a missing semicolon, malformed generator specs, missing
    /// `events`/`eseed`, unknown keys, malformed numbers and out-of-range
    /// knobs.
    pub fn parse(text: &str) -> Result<Self, GenError> {
        let Some((gen_text, stream_text)) = text.split_once(';') else {
            return Err(GenError::MalformedSpec(
                "expected `<gen spec>;events=<n>,eseed=<u64>[,...]`".to_owned(),
            ));
        };
        let gen = GenSpec::parse(gen_text)?;
        let mut spec = StreamSpec::new(gen, 0, 0);
        let (mut events_given, mut eseed_given) = (false, false);
        for field in stream_text.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let Some((key, value)) = field.split_once('=') else {
                return Err(GenError::MalformedSpec(format!("`{field}` is not key=value")));
            };
            let bad = |_| GenError::MalformedSpec(format!("`{value}` is not a number ({key})"));
            match key {
                "events" => {
                    spec.events = value.parse().map_err(bad)?;
                    events_given = true;
                }
                "eseed" => {
                    spec.eseed = value.parse().map_err(bad)?;
                    eseed_given = true;
                }
                "span" => spec.span = value.parse().map_err(bad)?,
                "churn" => spec.churn_permille = value.parse().map_err(bad)?,
                "rescale" => spec.rescale_permille = value.parse().map_err(bad)?,
                other => {
                    return Err(GenError::MalformedSpec(format!("unknown stream key `{other}`")))
                }
            }
        }
        if !events_given {
            return Err(GenError::MalformedSpec("missing `events=<n>`".to_owned()));
        }
        if !eseed_given {
            return Err(GenError::MalformedSpec("missing `eseed=<u64>`".to_owned()));
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the stream knobs (the generator knobs are checked by
    /// [`GenSpec::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`GenError::InvalidKnob`] naming the offending knob.
    pub fn validate(&self) -> Result<(), GenError> {
        self.gen.validate()?;
        let checks: [(&str, bool); 3] = [
            ("events (1..=1000000)", (1..=1_000_000).contains(&self.events)),
            ("span (0..=64)", self.span <= 64),
            (
                "churn+rescale (<=1000 permille)",
                u32::from(self.churn_permille) + u32::from(self.rescale_permille) <= 1000,
            ),
        ];
        for (knob, ok) in checks {
            if !ok {
                return Err(GenError::InvalidKnob(knob.to_owned()));
            }
        }
        Ok(())
    }

    /// The lossless textual form: parseable back by [`StreamSpec::parse`]
    /// into an equal spec — the form the sweep service ships on the wire.
    pub fn spec_string(&self) -> String {
        format!(
            "{};events={},eseed={},span={},churn={},rescale={}",
            self.gen.spec_string(),
            self.events,
            self.eseed,
            self.span,
            self.churn_permille,
            self.rescale_permille
        )
    }
}

impl fmt::Display for StreamSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{};events={},eseed={}", self.gen, self.events, self.eseed)
    }
}

/// Walk state of one live circuit while the stream is being generated.
struct LiveCircuit {
    index: usize,
    budget: u32,
    scaling: Scaling,
}

/// Generates the spec's circuit pool and its event sequence.
///
/// The first event is always an arrival (a session with no live circuit
/// has nothing to repair); afterwards the event mix follows the spec's
/// permille knobs.  The live set never drops to zero and every circuit of
/// the pool can arrive, retire and re-arrive.
///
/// # Errors
///
/// Rejects invalid knobs and propagates generator failures.
pub fn stream(spec: &StreamSpec) -> Result<(Vec<Benchmark>, Vec<StreamEvent>), GenError> {
    spec.validate()?;
    let batch = crate::generate(&spec.gen)?;
    let mut rng = StdRng::seed_from_u64(stream_seed(spec.eseed, batch.len()));

    // Window of each circuit's budget walk: [cp, cp + span].
    let window = |bench: &Benchmark| -> (u32, u32) {
        let cp = bench.control_steps[0];
        let span = if spec.span > 0 { spec.span } else { bench.control_steps[1] - cp };
        (cp, cp + span)
    };

    let mut live: Vec<LiveCircuit> = Vec::new();
    let mut pool: Vec<usize> = (0..batch.len()).collect();
    let mut events = Vec::with_capacity(spec.events);
    let churn = spec.churn_permille;
    let rescale = spec.rescale_permille;

    for _ in 0..spec.events {
        let roll: u16 = rng.gen_range(0u16..1000);
        let arrive = |pool: &mut Vec<usize>, live: &mut Vec<LiveCircuit>, rng: &mut StdRng| {
            let index = pool.remove(rng.gen_range(0usize..pool.len()));
            let (cp, _) = window(&batch[index]);
            live.push(LiveCircuit { index, budget: cp, scaling: Scaling::None });
            StreamEvent::CircuitArrived { circuit: batch[index].name.clone(), budget: cp }
        };
        let event = if live.is_empty() {
            arrive(&mut pool, &mut live, &mut rng)
        } else if roll < churn {
            // Churn: even sub-rolls arrive (pool permitting), odd retire
            // (as long as one circuit stays live).
            if roll % 2 == 0 && !pool.is_empty() {
                arrive(&mut pool, &mut live, &mut rng)
            } else if live.len() > 1 {
                let gone = live.remove(rng.gen_range(0usize..live.len()));
                pool.push(gone.index);
                StreamEvent::CircuitRetired { circuit: batch[gone.index].name.clone() }
            } else if !pool.is_empty() {
                arrive(&mut pool, &mut live, &mut rng)
            } else {
                // count=1 with nothing to churn: degrade to a budget step.
                budget_step(&batch, &mut live, &mut rng, &window)
            }
        } else if roll < churn + rescale {
            let picked = rng.gen_range(0usize..live.len());
            let target = &mut live[picked];
            target.scaling = target.scaling.next();
            StreamEvent::ScalingChanged {
                circuit: batch[target.index].name.clone(),
                scaling: target.scaling,
            }
        } else {
            budget_step(&batch, &mut live, &mut rng, &window)
        };
        events.push(event);
    }
    Ok((batch, events))
}

/// One reflecting ±1 budget step of a random live circuit.
fn budget_step(
    batch: &[Benchmark],
    live: &mut [LiveCircuit],
    rng: &mut StdRng,
    window: &impl Fn(&Benchmark) -> (u32, u32),
) -> StreamEvent {
    let target = &mut live[rng.gen_range(0usize..live.len())];
    let (lo, hi) = window(&batch[target.index]);
    let up = rng.gen_range(0u16..2) == 1;
    target.budget = if up {
        if target.budget >= hi {
            target.budget - 1
        } else {
            target.budget + 1
        }
    } else if target.budget <= lo {
        target.budget + 1
    } else {
        target.budget - 1
    };
    // A one-circuit window of zero width would step outside [lo, hi];
    // clamp so the walk stays a no-op there instead.
    target.budget = target.budget.clamp(lo, hi.max(lo));
    StreamEvent::BudgetChanged { circuit: batch[target.index].name.clone(), budget: target.budget }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Family;

    fn spec(text: &str) -> StreamSpec {
        StreamSpec::parse(text).unwrap()
    }

    #[test]
    fn parses_gen_and_stream_halves() {
        let s = spec("family=mux-tree,seed=7,count=3;events=50,eseed=9,span=3,churn=80,rescale=40");
        assert_eq!(s.gen.family, Family::MuxTree);
        assert_eq!(s.gen.count, 3);
        assert_eq!(s.events, 50);
        assert_eq!(s.eseed, 9);
        assert_eq!(s.span, 3);
        assert_eq!(s.churn_permille, 80);
        assert_eq!(s.rescale_permille, 40);
    }

    #[test]
    fn events_and_eseed_are_required_and_knobs_are_checked() {
        assert!(StreamSpec::parse("family=mux-tree,seed=1,count=1").is_err(), "no semicolon");
        let missing_events = StreamSpec::parse("family=mux-tree,seed=1,count=1;eseed=2");
        assert!(missing_events.unwrap_err().to_string().contains("events"));
        let missing_eseed = StreamSpec::parse("family=mux-tree,seed=1,count=1;events=5");
        assert!(missing_eseed.unwrap_err().to_string().contains("eseed"));
        assert!(StreamSpec::parse("family=mux-tree,seed=1,count=1;events=0,eseed=1").is_err());
        assert!(StreamSpec::parse(
            "family=mux-tree,seed=1,count=1;events=5,eseed=1,churn=600,rescale=600"
        )
        .is_err());
        assert!(
            StreamSpec::parse("family=mux-tree,seed=1,count=1;events=5,eseed=1,bogus=1").is_err()
        );
    }

    #[test]
    fn spec_string_roundtrips() {
        let s = spec("family=dsp-chain,seed=3,count=2,taps=5;events=40,eseed=11,churn=200");
        assert_eq!(StreamSpec::parse(&s.spec_string()).unwrap(), s);
    }

    #[test]
    fn streams_are_deterministic_and_start_with_an_arrival() {
        let s = spec("family=random-dag,seed=42,count=4;events=120,eseed=7");
        let (batch_a, events_a) = stream(&s).unwrap();
        let (batch_b, events_b) = stream(&s).unwrap();
        assert_eq!(events_a, events_b, "same spec, same events");
        assert_eq!(batch_a.len(), batch_b.len());
        assert!(matches!(events_a[0], StreamEvent::CircuitArrived { .. }));
        let different =
            stream(&spec("family=random-dag,seed=42,count=4;events=120,eseed=8")).unwrap().1;
        assert_ne!(events_a, different, "eseed changes the stream");
    }

    #[test]
    fn budget_walks_stay_inside_each_circuits_window() {
        let s = spec("family=mux-tree,seed=5,count=3;events=300,eseed=2,churn=150,rescale=100");
        let (batch, events) = stream(&s).unwrap();
        let window: std::collections::BTreeMap<&str, (u32, u32)> = batch
            .iter()
            .map(|b| (b.name.as_str(), (b.control_steps[0], b.control_steps[1])))
            .collect();
        let mut kinds = std::collections::BTreeSet::new();
        for event in &events {
            kinds.insert(event.kind());
            match event {
                StreamEvent::CircuitArrived { circuit, budget }
                | StreamEvent::BudgetChanged { circuit, budget } => {
                    let (lo, hi) = window[circuit.as_str()];
                    assert!(
                        (lo..=hi).contains(budget),
                        "{circuit}: budget {budget} outside [{lo}, {hi}]"
                    );
                }
                _ => {}
            }
        }
        assert!(kinds.contains("arrive") && kinds.contains("budget"), "{kinds:?}");
        assert!(kinds.contains("retire") && kinds.contains("scaling"), "{kinds:?}");
    }

    #[test]
    fn retirements_never_empty_the_live_set() {
        let s = spec("family=mux-tree,seed=9,count=2;events=400,eseed=3,churn=900,rescale=0");
        let (_, events) = stream(&s).unwrap();
        let mut alive = 0i64;
        for event in &events {
            match event {
                StreamEvent::CircuitArrived { .. } => alive += 1,
                StreamEvent::CircuitRetired { .. } => alive -= 1,
                _ => {}
            }
            assert!(alive >= 1, "live set emptied mid-stream");
            assert!(alive <= 2, "more live circuits than the pool holds");
        }
    }

    #[test]
    fn scaling_cycles_and_labels_roundtrip() {
        assert_eq!(Scaling::None.next(), Scaling::Linear);
        assert_eq!(Scaling::Quadratic.next(), Scaling::None);
        for law in Scaling::ALL {
            assert_eq!(Scaling::parse(law.label()), Some(law));
        }
        assert_eq!(Scaling::parse("cubic"), None);
    }
}
