//! Operation statistics (the columns of Table I in the paper).

use std::fmt;

use crate::cdfg::Cdfg;
use crate::op::OpClass;

/// Number of operations of each class in a design, as reported in Table I of
/// the paper (MUX, COMP, +, −, ×) plus the extra classes this implementation
/// supports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Multiplexors.
    pub mux: usize,
    /// Comparators.
    pub comp: usize,
    /// Adders.
    pub add: usize,
    /// Subtractors.
    pub sub: usize,
    /// Multipliers.
    pub mul: usize,
    /// Dividers.
    pub div: usize,
    /// Shifters / bitwise logic.
    pub logic: usize,
}

impl OpCounts {
    /// Counts the functional operations of `cdfg` by class.
    pub fn from_cdfg(cdfg: &Cdfg) -> Self {
        let mut counts = OpCounts::default();
        for (_, data) in cdfg.iter_nodes() {
            counts.bump(data.op.class());
        }
        counts
    }

    /// Increments the counter for `class` (structural nodes are ignored).
    pub fn bump(&mut self, class: OpClass) {
        match class {
            OpClass::Mux => self.mux += 1,
            OpClass::Comp => self.comp += 1,
            OpClass::Add => self.add += 1,
            OpClass::Sub => self.sub += 1,
            OpClass::Mul => self.mul += 1,
            OpClass::Div => self.div += 1,
            OpClass::Logic => self.logic += 1,
            OpClass::Structural => {}
        }
    }

    /// Count for a single class (zero for [`OpClass::Structural`]).
    pub fn count(&self, class: OpClass) -> usize {
        match class {
            OpClass::Mux => self.mux,
            OpClass::Comp => self.comp,
            OpClass::Add => self.add,
            OpClass::Sub => self.sub,
            OpClass::Mul => self.mul,
            OpClass::Div => self.div,
            OpClass::Logic => self.logic,
            OpClass::Structural => 0,
        }
    }

    /// Total number of functional operations.
    pub fn total(&self) -> usize {
        self.mux + self.comp + self.add + self.sub + self.mul + self.div + self.logic
    }

    /// Iterates over `(class, count)` pairs in the paper's column order.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, usize)> + '_ {
        OpClass::FUNCTIONAL.iter().map(move |&c| (c, self.count(c)))
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MUX:{} COMP:{} +:{} -:{} *:{}",
            self.mux, self.comp, self.add, self.sub, self.mul
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    #[test]
    fn counts_match_manual_tally() {
        let mut g = Cdfg::new("t");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let s = g.add_op(Op::Add, &[a, b]).unwrap();
        let d = g.add_op(Op::Sub, &[a, b]).unwrap();
        let p = g.add_op(Op::Mul, &[s, d]).unwrap();
        let c = g.add_op(Op::Lt, &[s, d]).unwrap();
        let m = g.add_mux(c, p, s).unwrap();
        g.add_output("o", m).unwrap();
        let counts = g.op_counts();
        assert_eq!(counts, OpCounts { mux: 1, comp: 1, add: 1, sub: 1, mul: 1, div: 0, logic: 0 });
        assert_eq!(counts.total(), 5);
        assert_eq!(counts.count(OpClass::Mul), 1);
        assert_eq!(counts.count(OpClass::Structural), 0);
    }

    #[test]
    fn iter_covers_all_functional_classes() {
        let counts = OpCounts { mux: 1, comp: 2, add: 3, sub: 4, mul: 5, div: 6, logic: 7 };
        let collected: Vec<(OpClass, usize)> = counts.iter().collect();
        assert_eq!(collected.len(), OpClass::FUNCTIONAL.len());
        assert!(collected.contains(&(OpClass::Add, 3)));
        assert!(collected.contains(&(OpClass::Logic, 7)));
    }

    #[test]
    fn display_matches_paper_columns() {
        let counts = OpCounts { mux: 3, comp: 3, add: 2, sub: 1, mul: 0, div: 0, logic: 0 };
        assert_eq!(counts.to_string(), "MUX:3 COMP:3 +:2 -:1 *:0");
    }
}
