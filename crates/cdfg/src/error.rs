//! Error type for CDFG construction and validation.

use std::fmt;

use crate::graph::NodeId;

/// Errors produced while building or validating a [`crate::Cdfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CdfgError {
    /// A node id referenced an entry that does not exist (or was removed).
    UnknownNode(NodeId),
    /// An operation was given the wrong number of operands.
    ArityMismatch {
        /// The operation that was being created or validated.
        op: &'static str,
        /// Number of operands the operation requires.
        expected: usize,
        /// Number of operands actually supplied.
        found: usize,
    },
    /// Two data edges target the same input port of the same node.
    DuplicatePort {
        /// Node whose input port is multiply driven.
        node: NodeId,
        /// The multiply-driven port index.
        port: u16,
    },
    /// A required input port of a node has no driver.
    MissingPort {
        /// Node with the undriven port.
        node: NodeId,
        /// The undriven port index.
        port: u16,
    },
    /// The graph contains a cycle (CDFGs must be acyclic).
    CyclicGraph,
    /// An `Input`, `Const` or `Output` node was used where a computational
    /// operation was required, or vice versa.
    InvalidNodeRole {
        /// Offending node.
        node: NodeId,
        /// Human-readable description of the violated expectation.
        reason: &'static str,
    },
    /// A name was reused for two different inputs or outputs.
    DuplicateName(String),
    /// The graph has no output node, so no computation is observable.
    NoOutputs,
}

impl fmt::Display for CdfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdfgError::UnknownNode(n) => write!(f, "unknown node id {n}"),
            CdfgError::ArityMismatch { op, expected, found } => {
                write!(f, "operation {op} expects {expected} operands, found {found}")
            }
            CdfgError::DuplicatePort { node, port } => {
                write!(f, "node {node} input port {port} is driven more than once")
            }
            CdfgError::MissingPort { node, port } => {
                write!(f, "node {node} input port {port} has no driver")
            }
            CdfgError::CyclicGraph => write!(f, "graph contains a cycle"),
            CdfgError::InvalidNodeRole { node, reason } => {
                write!(f, "node {node} used in an invalid role: {reason}")
            }
            CdfgError::DuplicateName(name) => write!(f, "duplicate port name `{name}`"),
            CdfgError::NoOutputs => write!(f, "graph has no output nodes"),
        }
    }
}

impl std::error::Error for CdfgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = vec![
            CdfgError::UnknownNode(NodeId::new(3)),
            CdfgError::ArityMismatch { op: "add", expected: 2, found: 1 },
            CdfgError::DuplicatePort { node: NodeId::new(0), port: 1 },
            CdfgError::MissingPort { node: NodeId::new(0), port: 0 },
            CdfgError::CyclicGraph,
            CdfgError::InvalidNodeRole { node: NodeId::new(9), reason: "output has successors" },
            CdfgError::DuplicateName("a".to_owned()),
            CdfgError::NoOutputs,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CdfgError>();
    }
}
