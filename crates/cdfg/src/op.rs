//! The primitive operation set of the CDFG.
//!
//! Operations are deliberately close to what a 1990s behavioral synthesis
//! system (HYPER) would offer: word-level arithmetic, comparisons, a
//! two-input multiplexor for conditionals, plus the structural
//! input/constant/output pseudo-operations.

use std::fmt;

/// The kind of comparison performed by a [`Op::Lt`]-family node.
///
/// Comparators all map onto the same `COMP` execution unit; the kind only
/// affects evaluation semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareKind {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CompareKind {
    /// Evaluates the comparison on two signed word values, returning 1 or 0.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let r = match self {
            CompareKind::Lt => a < b,
            CompareKind::Le => a <= b,
            CompareKind::Gt => a > b,
            CompareKind::Ge => a >= b,
            CompareKind::Eq => a == b,
            CompareKind::Ne => a != b,
        };
        i64::from(r)
    }

    /// The comparison with operands swapped that yields the same result.
    pub fn swapped(self) -> Self {
        match self {
            CompareKind::Lt => CompareKind::Gt,
            CompareKind::Le => CompareKind::Ge,
            CompareKind::Gt => CompareKind::Lt,
            CompareKind::Ge => CompareKind::Le,
            CompareKind::Eq => CompareKind::Eq,
            CompareKind::Ne => CompareKind::Ne,
        }
    }
}

impl fmt::Display for CompareKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareKind::Lt => "<",
            CompareKind::Le => "<=",
            CompareKind::Gt => ">",
            CompareKind::Ge => ">=",
            CompareKind::Eq => "==",
            CompareKind::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A primitive CDFG operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Op {
    /// A primary input of the design (no operands).
    Input,
    /// A compile-time constant (no operands).
    Const(i64),
    /// A primary output of the design (one operand).
    Output,
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division (division by zero yields zero, as a hardware divider
    /// with a zero guard would).
    Div,
    /// Arithmetic negation (one operand).
    Neg,
    /// Logical shift left by a constant-like second operand.
    Shl,
    /// Arithmetic shift right by a constant-like second operand.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise not (one operand).
    Not,
    /// Word comparison producing a 1-bit result.
    Gt,
    /// Word comparison: less than.
    Lt,
    /// Word comparison: greater or equal.
    Ge,
    /// Word comparison: less or equal.
    Le,
    /// Word comparison: equal.
    Eq,
    /// Word comparison: not equal.
    Ne,
    /// Two-input multiplexor.  Port 0 is the select (control) input, port 1
    /// the value chosen when the select is 0, port 2 the value chosen when
    /// the select is non-zero.
    Mux,
}

/// Coarse operation classes used for resource allocation, circuit statistics
/// (Table I of the paper) and the relative power weights (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Multiplexors.
    Mux,
    /// Comparators (all [`CompareKind`]s).
    Comp,
    /// Adders.
    Add,
    /// Subtractors (and negation, which a subtractor implements).
    Sub,
    /// Multipliers.
    Mul,
    /// Dividers.
    Div,
    /// Shifters and bitwise logic.
    Logic,
    /// Inputs, constants and outputs — structural nodes that occupy no
    /// execution unit and consume no datapath power in the paper's model.
    Structural,
}

impl OpClass {
    /// All classes that occupy an execution unit, in the column order used by
    /// the paper's tables (MUX, COMP, +, −, ×) followed by the extra classes
    /// this implementation supports.
    pub const FUNCTIONAL: [OpClass; 7] = [
        OpClass::Mux,
        OpClass::Comp,
        OpClass::Add,
        OpClass::Sub,
        OpClass::Mul,
        OpClass::Div,
        OpClass::Logic,
    ];

    /// Position of a functional class inside [`OpClass::FUNCTIONAL`] — the
    /// dense index the schedulers use for per-class arrays.
    ///
    /// # Panics
    ///
    /// Panics for [`OpClass::Structural`], which occupies no execution unit.
    pub fn dense_index(self) -> usize {
        match self {
            OpClass::Mux => 0,
            OpClass::Comp => 1,
            OpClass::Add => 2,
            OpClass::Sub => 3,
            OpClass::Mul => 4,
            OpClass::Div => 5,
            OpClass::Logic => 6,
            OpClass::Structural => unreachable!("structural nodes occupy no execution unit"),
        }
    }

    /// Short uppercase label matching the paper's table headers.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Mux => "MUX",
            OpClass::Comp => "COMP",
            OpClass::Add => "+",
            OpClass::Sub => "-",
            OpClass::Mul => "*",
            OpClass::Div => "/",
            OpClass::Logic => "LOGIC",
            OpClass::Structural => "IO",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl Op {
    /// Number of data operands the operation requires.
    pub fn arity(self) -> usize {
        match self {
            Op::Input | Op::Const(_) => 0,
            Op::Output | Op::Neg | Op::Not => 1,
            Op::Mux => 3,
            _ => 2,
        }
    }

    /// Returns the comparison kind if this is a comparator operation.
    pub fn compare_kind(self) -> Option<CompareKind> {
        match self {
            Op::Gt => Some(CompareKind::Gt),
            Op::Lt => Some(CompareKind::Lt),
            Op::Ge => Some(CompareKind::Ge),
            Op::Le => Some(CompareKind::Le),
            Op::Eq => Some(CompareKind::Eq),
            Op::Ne => Some(CompareKind::Ne),
            _ => None,
        }
    }

    /// Returns `true` for inputs and constants (nodes without operands).
    pub fn is_source(self) -> bool {
        matches!(self, Op::Input | Op::Const(_))
    }

    /// Returns `true` for output nodes.
    pub fn is_output(self) -> bool {
        matches!(self, Op::Output)
    }

    /// Returns `true` if this operation occupies an execution unit in the
    /// datapath (everything except inputs, constants and outputs).
    pub fn is_functional(self) -> bool {
        !matches!(self, Op::Input | Op::Const(_) | Op::Output)
    }

    /// Returns `true` for multiplexor nodes.
    pub fn is_mux(self) -> bool {
        matches!(self, Op::Mux)
    }

    /// Returns `true` for comparator nodes.
    pub fn is_comparator(self) -> bool {
        self.compare_kind().is_some()
    }

    /// The coarse [`OpClass`] of the operation.
    pub fn class(self) -> OpClass {
        match self {
            Op::Input | Op::Const(_) | Op::Output => OpClass::Structural,
            Op::Add => OpClass::Add,
            Op::Sub | Op::Neg => OpClass::Sub,
            Op::Mul => OpClass::Mul,
            Op::Div => OpClass::Div,
            Op::Shl | Op::Shr | Op::And | Op::Or | Op::Xor | Op::Not => OpClass::Logic,
            Op::Gt | Op::Lt | Op::Ge | Op::Le | Op::Eq | Op::Ne => OpClass::Comp,
            Op::Mux => OpClass::Mux,
        }
    }

    /// Latency of the operation in control steps.
    ///
    /// The paper assumes every operation (including the multiplexor) takes
    /// one control step; this model keeps that assumption but leaves the
    /// hook in one place should a multi-cycle multiplier ever be wanted.
    pub fn delay(self) -> u32 {
        match self {
            Op::Input | Op::Const(_) | Op::Output => 0,
            _ => 1,
        }
    }

    /// Evaluates the operation on its operand values.
    ///
    /// Values are plain signed words; the datapath bitwidth is applied by the
    /// RTL simulator, not here.  Division by zero returns zero.
    ///
    /// # Panics
    ///
    /// Panics if `args.len()` does not equal [`Op::arity`] (for functional
    /// operations) or if an `Input` node is evaluated (inputs have no
    /// defining expression).
    pub fn eval(self, args: &[i64]) -> i64 {
        match self {
            Op::Input => panic!("input nodes have no evaluation semantics"),
            Op::Const(c) => c,
            Op::Output | Op::Neg | Op::Not => {
                assert_eq!(args.len(), 1, "unary op expects 1 operand");
                match self {
                    Op::Output => args[0],
                    Op::Neg => args[0].wrapping_neg(),
                    Op::Not => !args[0],
                    _ => unreachable!(),
                }
            }
            Op::Mux => {
                assert_eq!(args.len(), 3, "mux expects select, false, true operands");
                if args[0] != 0 {
                    args[2]
                } else {
                    args[1]
                }
            }
            _ => {
                assert_eq!(args.len(), 2, "binary op expects 2 operands");
                let (a, b) = (args[0], args[1]);
                match self {
                    Op::Add => a.wrapping_add(b),
                    Op::Sub => a.wrapping_sub(b),
                    Op::Mul => a.wrapping_mul(b),
                    Op::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    Op::Shl => a.wrapping_shl((b & 63) as u32),
                    Op::Shr => a.wrapping_shr((b & 63) as u32),
                    Op::And => a & b,
                    Op::Or => a | b,
                    Op::Xor => a ^ b,
                    Op::Gt | Op::Lt | Op::Ge | Op::Le | Op::Eq | Op::Ne => {
                        self.compare_kind().expect("comparator").eval(a, b)
                    }
                    _ => unreachable!("covered by outer match"),
                }
            }
        }
    }

    /// Short mnemonic used in schedules, DOT dumps and generated VHDL.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Input => "in",
            Op::Const(_) => "const",
            Op::Output => "out",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Neg => "neg",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Not => "not",
            Op::Gt => "gt",
            Op::Lt => "lt",
            Op::Ge => "ge",
            Op::Le => "le",
            Op::Eq => "eq",
            Op::Ne => "ne",
            Op::Mux => "mux",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Const(c) => write!(f, "const({c})"),
            _ => f.write_str(self.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_expectations() {
        assert_eq!(Op::Add.arity(), 2);
        assert_eq!(Op::Mux.arity(), 3);
        assert_eq!(Op::Neg.arity(), 1);
        assert_eq!(Op::Input.arity(), 0);
        assert_eq!(Op::Const(3).arity(), 0);
        assert_eq!(Op::Output.arity(), 1);
    }

    #[test]
    fn eval_arithmetic() {
        assert_eq!(Op::Add.eval(&[3, 4]), 7);
        assert_eq!(Op::Sub.eval(&[3, 4]), -1);
        assert_eq!(Op::Mul.eval(&[3, 4]), 12);
        assert_eq!(Op::Div.eval(&[12, 4]), 3);
        assert_eq!(Op::Div.eval(&[12, 0]), 0, "division by zero is guarded");
        assert_eq!(Op::Neg.eval(&[5]), -5);
    }

    #[test]
    fn eval_comparisons() {
        assert_eq!(Op::Gt.eval(&[5, 3]), 1);
        assert_eq!(Op::Gt.eval(&[3, 5]), 0);
        assert_eq!(Op::Le.eval(&[3, 3]), 1);
        assert_eq!(Op::Eq.eval(&[3, 3]), 1);
        assert_eq!(Op::Ne.eval(&[3, 3]), 0);
    }

    #[test]
    fn eval_mux_selects_by_control() {
        assert_eq!(Op::Mux.eval(&[0, 10, 20]), 10);
        assert_eq!(Op::Mux.eval(&[1, 10, 20]), 20);
        assert_eq!(Op::Mux.eval(&[-3, 10, 20]), 20, "any non-zero select picks the true input");
    }

    #[test]
    fn eval_logic_and_shifts() {
        assert_eq!(Op::And.eval(&[0b1100, 0b1010]), 0b1000);
        assert_eq!(Op::Or.eval(&[0b1100, 0b1010]), 0b1110);
        assert_eq!(Op::Xor.eval(&[0b1100, 0b1010]), 0b0110);
        assert_eq!(Op::Not.eval(&[0]), -1);
        assert_eq!(Op::Shl.eval(&[1, 4]), 16);
        assert_eq!(Op::Shr.eval(&[-16, 2]), -4);
    }

    #[test]
    fn classes_match_paper_columns() {
        assert_eq!(Op::Mux.class(), OpClass::Mux);
        assert_eq!(Op::Gt.class(), OpClass::Comp);
        assert_eq!(Op::Add.class(), OpClass::Add);
        assert_eq!(Op::Sub.class(), OpClass::Sub);
        assert_eq!(Op::Mul.class(), OpClass::Mul);
        assert_eq!(Op::Input.class(), OpClass::Structural);
        assert_eq!(OpClass::Mul.label(), "*");
    }

    #[test]
    fn functional_flags() {
        assert!(Op::Add.is_functional());
        assert!(!Op::Input.is_functional());
        assert!(!Op::Output.is_functional());
        assert!(Op::Input.is_source());
        assert!(Op::Const(1).is_source());
        assert!(Op::Output.is_output());
        assert!(Op::Mux.is_mux());
        assert!(Op::Lt.is_comparator());
        assert!(!Op::Add.is_comparator());
    }

    #[test]
    fn delays_are_one_step_for_functional_ops() {
        for op in [Op::Add, Op::Sub, Op::Mul, Op::Gt, Op::Mux] {
            assert_eq!(op.delay(), 1);
        }
        assert_eq!(Op::Input.delay(), 0);
        assert_eq!(Op::Output.delay(), 0);
    }

    #[test]
    fn compare_kind_swapping() {
        for kind in [
            CompareKind::Lt,
            CompareKind::Le,
            CompareKind::Gt,
            CompareKind::Ge,
            CompareKind::Eq,
            CompareKind::Ne,
        ] {
            for (a, b) in [(1, 2), (2, 1), (3, 3)] {
                assert_eq!(kind.eval(a, b), kind.swapped().eval(b, a));
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Op::Add.to_string(), "add");
        assert_eq!(Op::Const(7).to_string(), "const(7)");
        assert_eq!(CompareKind::Ge.to_string(), ">=");
        assert_eq!(OpClass::Comp.to_string(), "COMP");
    }

    #[test]
    #[should_panic(expected = "binary op expects 2 operands")]
    fn eval_with_wrong_arity_panics() {
        Op::Add.eval(&[1]);
    }
}
