//! A dense, fixed-capacity bitset over node indices.
//!
//! The mux-analysis hot path tests cone membership and "needed" flags for
//! thousands of nodes per multiplexor; `BTreeSet<NodeId>` answers each test
//! with a pointer-chasing tree walk and each insert with an allocation.
//! [`DenseBitSet`] packs the same membership into one `u64` word per 64 node
//! slots: membership is a shift and a mask, clearing is a `memset`, and a
//! workspace can reuse the backing storage across queries forever.
//!
//! The crate vendors its own bitset (rather than pulling `fixedbitset` or
//! `bit-vec`) because the build is offline: no new dependencies.

/// A fixed-capacity set of `usize` indices backed by `u64` words.
///
/// Capacity is set by [`DenseBitSet::resize_cleared`]; all operations on
/// indices at or beyond the capacity panic (same contract as indexing a
/// dense `Vec` in the scheduling kernels).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseBitSet {
    words: Vec<u64>,
    bits: usize,
}

impl DenseBitSet {
    /// An empty set with zero capacity.
    pub fn new() -> Self {
        DenseBitSet::default()
    }

    /// An empty set able to hold indices `0..bits`.
    pub fn with_capacity(bits: usize) -> Self {
        DenseBitSet { words: vec![0; bits.div_ceil(64)], bits }
    }

    /// Clears the set and resizes it to hold indices `0..bits`.
    ///
    /// Reuses the existing allocation when possible — this is the reset a
    /// workspace performs once per graph.
    pub fn resize_cleared(&mut self, bits: usize) {
        self.words.clear();
        self.words.resize(bits.div_ceil(64), 0);
        self.bits = bits;
    }

    /// Removes every index without changing the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of indices the set can hold.
    pub fn capacity(&self) -> usize {
        self.bits
    }

    /// Inserts `index`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.bits, "index {index} out of bitset capacity {}", self.bits);
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `index`, returning `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.bits, "index {index} out of bitset capacity {}", self.bits);
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Whether `index` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn contains(&self, index: usize) -> bool {
        assert!(index < self.bits, "index {index} out of bitset capacity {}", self.bits);
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Number of indices in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set holds no indices.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_round_trip() {
        let mut s = DenseBitSet::with_capacity(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert!(s.remove(64));
        assert!(!s.remove(64), "second remove reports absent");
        assert!(!s.contains(64));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iter_is_ascending_and_complete() {
        let mut s = DenseBitSet::with_capacity(200);
        for i in [199, 0, 65, 3, 64, 127, 128] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 3, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn resize_cleared_drops_members_and_reuses() {
        let mut s = DenseBitSet::with_capacity(100);
        s.insert(42);
        s.resize_cleared(50);
        assert_eq!(s.capacity(), 50);
        assert!(s.is_empty());
        s.insert(49);
        s.resize_cleared(100);
        assert!(!s.contains(49), "resize clears old members");
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = DenseBitSet::with_capacity(70);
        s.insert(69);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 70);
        assert!(!s.contains(69));
    }

    #[test]
    #[should_panic(expected = "out of bitset capacity")]
    fn out_of_capacity_contains_panics() {
        let s = DenseBitSet::with_capacity(10);
        let _ = s.contains(10);
    }

    #[test]
    #[should_panic(expected = "out of bitset capacity")]
    fn out_of_capacity_insert_panics() {
        let mut s = DenseBitSet::new();
        s.insert(0);
    }
}
