//! A fluent, expression-oriented builder for CDFGs.
//!
//! [`CdfgBuilder`] keeps a symbol table of named values so that designs can
//! be written as straight-line single-assignment code, mirroring how the
//! Silage frontend elaborates programs.
//!
//! ```
//! use cdfg::CdfgBuilder;
//!
//! # fn main() -> Result<(), cdfg::CdfgError> {
//! let mut b = CdfgBuilder::new("max");
//! let a = b.input("a");
//! let x = b.input("x");
//! let cond = b.gt(a, x)?;
//! let m = b.mux(cond, x, a)?;
//! b.output("max", m)?;
//! let cdfg = b.finish()?;
//! assert_eq!(cdfg.op_counts().mux, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use crate::cdfg::Cdfg;
use crate::error::CdfgError;
use crate::graph::NodeId;
use crate::op::Op;

/// Fluent builder over a [`Cdfg`].
#[derive(Debug, Clone)]
pub struct CdfgBuilder {
    cdfg: Cdfg,
    symbols: BTreeMap<String, NodeId>,
}

impl CdfgBuilder {
    /// Creates a builder for a design with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CdfgBuilder { cdfg: Cdfg::new(name), symbols: BTreeMap::new() }
    }

    /// Creates a builder with an explicit datapath bitwidth.
    pub fn with_bitwidth(name: impl Into<String>, bitwidth: u32) -> Self {
        CdfgBuilder { cdfg: Cdfg::with_bitwidth(name, bitwidth), symbols: BTreeMap::new() }
    }

    /// Adds a primary input and binds it to `name` in the symbol table.
    pub fn input(&mut self, name: &str) -> NodeId {
        let id = self.cdfg.add_input(name);
        self.symbols.insert(name.to_owned(), id);
        id
    }

    /// Adds (or reuses) a constant node.
    pub fn constant(&mut self, value: i64) -> NodeId {
        self.cdfg.add_const(value)
    }

    /// Binds `name` to an existing value, shadowing any previous binding.
    pub fn bind(&mut self, name: &str, value: NodeId) {
        self.symbols.insert(name.to_owned(), value);
    }

    /// Looks up a previously bound name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.symbols.get(name).copied()
    }

    /// Adds an arbitrary functional operation.
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of [`Cdfg::add_op`].
    pub fn op(&mut self, op: Op, operands: &[NodeId]) -> Result<NodeId, CdfgError> {
        self.cdfg.add_op(op, operands)
    }

    /// Adds an addition node.
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of [`Cdfg::add_op`].
    pub fn add(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, CdfgError> {
        self.op(Op::Add, &[a, b])
    }

    /// Adds a subtraction node (`a - b`).
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of [`Cdfg::add_op`].
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, CdfgError> {
        self.op(Op::Sub, &[a, b])
    }

    /// Adds a multiplication node.
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of [`Cdfg::add_op`].
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, CdfgError> {
        self.op(Op::Mul, &[a, b])
    }

    /// Adds a greater-than comparator (`a > b`).
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of [`Cdfg::add_op`].
    pub fn gt(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, CdfgError> {
        self.op(Op::Gt, &[a, b])
    }

    /// Adds a less-than comparator (`a < b`).
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of [`Cdfg::add_op`].
    pub fn lt(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, CdfgError> {
        self.op(Op::Lt, &[a, b])
    }

    /// Adds an equality comparator (`a == b`).
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of [`Cdfg::add_op`].
    pub fn eq(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, CdfgError> {
        self.op(Op::Eq, &[a, b])
    }

    /// Adds an inequality comparator (`a != b`).
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of [`Cdfg::add_op`].
    pub fn ne(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, CdfgError> {
        self.op(Op::Ne, &[a, b])
    }

    /// Adds a greater-or-equal comparator (`a >= b`).
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of [`Cdfg::add_op`].
    pub fn ge(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, CdfgError> {
        self.op(Op::Ge, &[a, b])
    }

    /// Adds a multiplexor: `select ? when_true : when_false`.
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of [`Cdfg::add_mux`].
    pub fn mux(
        &mut self,
        select: NodeId,
        when_false: NodeId,
        when_true: NodeId,
    ) -> Result<NodeId, CdfgError> {
        self.cdfg.add_mux(select, when_false, when_true)
    }

    /// Adds a primary output.
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of [`Cdfg::add_output`].
    pub fn output(&mut self, name: &str, src: NodeId) -> Result<NodeId, CdfgError> {
        self.cdfg.add_output(name, src)
    }

    /// Read access to the CDFG under construction.
    pub fn cdfg(&self) -> &Cdfg {
        &self.cdfg
    }

    /// Validates and returns the finished CDFG.
    ///
    /// # Errors
    ///
    /// Returns any structural violation found by [`Cdfg::validate`].
    pub fn finish(self) -> Result<Cdfg, CdfgError> {
        self.cdfg.validate()?;
        Ok(self.cdfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn builder_builds_valid_graph() {
        let mut b = CdfgBuilder::new("clamp");
        let x = b.input("x");
        let hi = b.constant(100);
        let over = b.gt(x, hi).unwrap();
        let clamped = b.mux(over, x, hi).unwrap();
        b.output("y", clamped).unwrap();
        let g = b.finish().unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("x".to_owned(), 250);
        assert_eq!(g.evaluate(&inputs)["y"], 100);
        inputs.insert("x".to_owned(), 42);
        assert_eq!(g.evaluate(&inputs)["y"], 42);
    }

    #[test]
    fn symbol_table_binds_and_shadows() {
        let mut b = CdfgBuilder::new("t");
        let a = b.input("a");
        assert_eq!(b.lookup("a"), Some(a));
        let c = b.constant(1);
        b.bind("a", c);
        assert_eq!(b.lookup("a"), Some(c), "binding shadows the input");
        assert_eq!(b.lookup("missing"), None);
    }

    #[test]
    fn finish_validates() {
        let b = CdfgBuilder::new("empty");
        assert!(b.finish().is_err(), "no outputs");
    }

    #[test]
    fn all_helper_ops_work() {
        let mut b = CdfgBuilder::with_bitwidth("ops", 16);
        let a = b.input("a");
        let c = b.input("b");
        let sum = b.add(a, c).unwrap();
        let diff = b.sub(a, c).unwrap();
        let prod = b.mul(sum, diff).unwrap();
        let lt = b.lt(a, c).unwrap();
        let ge = b.ge(a, c).unwrap();
        let eq = b.eq(a, c).unwrap();
        let ne = b.ne(a, c).unwrap();
        let sel1 = b.mux(lt, prod, sum).unwrap();
        let sel2 = b.mux(ge, sel1, diff).unwrap();
        let sel3 = b.mux(eq, sel2, prod).unwrap();
        let sel4 = b.mux(ne, sel3, sum).unwrap();
        b.output("o", sel4).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.default_bitwidth(), 16);
        assert_eq!(g.op_counts().mux, 4);
        assert_eq!(g.op_counts().comp, 4);
    }
}
