//! Compact slice adjacency: CSR-style flat arrays over a [`Cdfg`].
//!
//! The scheduling kernels ask for predecessors and successors millions of
//! times per sweep; the original [`Cdfg::predecessors`]/[`Cdfg::successors`]
//! answered each query with a fresh, sorted, deduplicated `Vec` — an
//! allocation plus an `O(d log d)` sort per call.  [`Slices`] flattens the
//! whole adjacency into four arrays built once per graph:
//!
//! ```text
//! pred_index: [0, 0, 2, 5, ...]      (slot_count + 1 offsets)
//! pred_data:  [n0, n3, n1, n2, ...]  (deduplicated, ascending per node)
//! ```
//!
//! so `preds(n)` is two index reads and a borrow — `O(1)`, allocation-free.
//! The view also caches the deterministic topological order, the list of
//! functional nodes and a per-slot functional mask, all of which the
//! schedulers previously recomputed (with allocations) on every call.
//!
//! A `Slices` is built lazily on first use and cached inside the [`Cdfg`];
//! every structural mutation (adding nodes, edges or control edges)
//! invalidates the cache.  The legacy `Vec`-returning accessors on [`Cdfg`]
//! delegate to this view, so existing callers get the speedup without code
//! changes.

use crate::cdfg::Cdfg;
use crate::graph::NodeId;

/// Flat CSR adjacency view plus cached node orderings for one [`Cdfg`].
///
/// Obtain one with [`Cdfg::slices`]; the instance is valid until the graph
/// is mutated (the `Cdfg` drops it automatically on mutation).
#[derive(Debug, Clone, Default)]
pub struct Slices {
    slot_count: usize,
    pred_index: Vec<u32>,
    pred_data: Vec<NodeId>,
    succ_index: Vec<u32>,
    succ_data: Vec<NodeId>,
    data_pred_index: Vec<u32>,
    data_pred_data: Vec<NodeId>,
    topo: Vec<NodeId>,
    topo_pos: Vec<u32>,
    functional: Vec<NodeId>,
    functional_mask: Vec<bool>,
}

impl Slices {
    /// Builds the view by a single scan over the graph.
    pub(crate) fn build(cdfg: &Cdfg) -> Self {
        let graph = cdfg.graph();
        let slot_count = graph.node_ids().map(|n| n.index() + 1).max().unwrap_or(0);

        let mut pred_index = Vec::with_capacity(slot_count + 1);
        let mut pred_data = Vec::with_capacity(graph.edge_count());
        let mut succ_index = Vec::with_capacity(slot_count + 1);
        let mut succ_data = Vec::with_capacity(graph.edge_count());
        let mut data_pred_index = Vec::with_capacity(slot_count + 1);
        let mut data_pred_data = Vec::with_capacity(graph.edge_count());
        let mut scratch: Vec<NodeId> = Vec::new();

        pred_index.push(0);
        succ_index.push(0);
        data_pred_index.push(0);
        for slot in 0..slot_count {
            let id = NodeId::new(slot as u32);
            if graph.contains_node(id) {
                scratch.clear();
                scratch.extend(
                    graph
                        .in_edges(id)
                        .iter()
                        .filter_map(|&e| graph.edge_endpoints(e).map(|(s, _)| s)),
                );
                scratch.sort();
                scratch.dedup();
                pred_data.extend_from_slice(&scratch);

                scratch.clear();
                scratch.extend(graph.in_edges(id).iter().filter_map(|&e| {
                    let payload = graph.edge(e)?;
                    if payload.kind.is_data() {
                        graph.edge_endpoints(e).map(|(s, _)| s)
                    } else {
                        None
                    }
                }));
                scratch.sort();
                scratch.dedup();
                data_pred_data.extend_from_slice(&scratch);

                scratch.clear();
                scratch.extend(
                    graph
                        .out_edges(id)
                        .iter()
                        .filter_map(|&e| graph.edge_endpoints(e).map(|(_, d)| d)),
                );
                scratch.sort();
                scratch.dedup();
                succ_data.extend_from_slice(&scratch);
            }
            pred_index.push(pred_data.len() as u32);
            succ_index.push(succ_data.len() as u32);
            data_pred_index.push(data_pred_data.len() as u32);
        }

        let topo = graph.topological_order().expect("CDFG must be acyclic");
        let mut topo_pos = vec![0u32; slot_count];
        for (pos, &n) in topo.iter().enumerate() {
            topo_pos[n.index()] = pos as u32;
        }

        let mut functional = Vec::new();
        let mut functional_mask = vec![false; slot_count];
        for (id, data) in graph.nodes() {
            if data.op.is_functional() {
                functional.push(id);
                functional_mask[id.index()] = true;
            }
        }

        Slices {
            slot_count,
            pred_index,
            pred_data,
            succ_index,
            succ_data,
            data_pred_index,
            data_pred_data,
            topo,
            topo_pos,
            functional,
            functional_mask,
        }
    }

    /// One past the highest live node index; dense per-node arrays in the
    /// schedulers are sized by this.
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// Immediate predecessors of `id` via data or control edges,
    /// deduplicated and ascending (empty for unknown ids).
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        if i >= self.slot_count {
            return &[];
        }
        &self.pred_data[self.pred_index[i] as usize..self.pred_index[i + 1] as usize]
    }

    /// Immediate successors of `id` via data or control edges, deduplicated
    /// and ascending (empty for unknown ids).
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        if i >= self.slot_count {
            return &[];
        }
        &self.succ_data[self.succ_index[i] as usize..self.succ_index[i + 1] as usize]
    }

    /// Immediate predecessors of `id` via *data* edges only, deduplicated
    /// and ascending (empty for unknown ids).  This is the adjacency cone
    /// queries walk: fanin cones follow value flow, never precedence edges.
    pub fn data_preds(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        if i >= self.slot_count {
            return &[];
        }
        &self.data_pred_data[self.data_pred_index[i] as usize..self.data_pred_index[i + 1] as usize]
    }

    /// The deterministic topological order of all nodes.
    pub fn topo(&self) -> &[NodeId] {
        &self.topo
    }

    /// Position of `id` in [`Slices::topo`]; lets callers order an arbitrary
    /// node subset topologically with a sort instead of a full-graph scan.
    ///
    /// Unknown ids return 0 — only pass live node ids.
    pub fn topo_pos(&self, id: NodeId) -> u32 {
        self.topo_pos.get(id.index()).copied().unwrap_or(0)
    }

    /// Ids of all functional nodes, ascending.
    pub fn functional(&self) -> &[NodeId] {
        &self.functional
    }

    /// Whether `id` is a live functional node.
    pub fn is_functional(&self, id: NodeId) -> bool {
        self.functional_mask.get(id.index()).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use crate::cdfg::Cdfg;
    use crate::graph::NodeId;
    use crate::op::Op;

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn slices_agree_with_vec_accessors() {
        let (g, ..) = abs_diff();
        let sl = g.slices();
        for id in g.node_ids() {
            assert_eq!(sl.preds(id), g.predecessors(id).as_slice(), "preds of {id}");
            assert_eq!(sl.succs(id), g.successors(id).as_slice(), "succs of {id}");
        }
        assert_eq!(sl.topo(), g.topological_order().as_slice());
        assert_eq!(sl.functional(), g.functional_nodes().as_slice());
    }

    #[test]
    fn parallel_edges_are_deduplicated() {
        let mut g = Cdfg::new("sq");
        let a = g.add_input("a");
        let sq = g.add_op(Op::Mul, &[a, a]).unwrap();
        g.add_output("o", sq).unwrap();
        assert_eq!(g.slices().preds(sq), &[a]);
        assert_eq!(g.slices().succs(a), &[sq]);
    }

    #[test]
    fn data_preds_exclude_control_edges() {
        let (mut g, gt, amb, ..) = abs_diff();
        g.add_control_edge(gt, amb).unwrap();
        let sl = g.slices();
        assert!(sl.preds(amb).contains(&gt), "combined adjacency sees the control edge");
        assert!(!sl.data_preds(amb).contains(&gt), "data adjacency does not");
        for id in g.node_ids() {
            let mut expected: Vec<NodeId> = g.operands(id);
            expected.sort();
            expected.dedup();
            assert_eq!(sl.data_preds(id), expected.as_slice(), "data preds of {id}");
        }
        assert!(sl.data_preds(NodeId::new(999)).is_empty());
    }

    #[test]
    fn topo_pos_matches_topo_order() {
        let (g, ..) = abs_diff();
        let sl = g.slices();
        for (pos, &n) in sl.topo().iter().enumerate() {
            assert_eq!(sl.topo_pos(n), pos as u32);
        }
        assert_eq!(sl.topo_pos(NodeId::new(999)), 0, "unknown ids report 0");
    }

    #[test]
    fn mutation_invalidates_the_cache() {
        let (mut g, gt, amb, ..) = abs_diff();
        assert!(!g.slices().succs(gt).contains(&amb));
        g.add_control_edge(gt, amb).unwrap();
        assert!(g.slices().succs(gt).contains(&amb), "rebuilt after mutation");
        let e = g.control_edges()[0];
        g.remove_control_edge(e);
        assert!(!g.slices().succs(gt).contains(&amb), "rebuilt after removal");
    }

    #[test]
    fn node_mut_invalidates_the_cache() {
        // node_mut can rewrite a payload's `op`, which feeds the cached
        // functional list/mask — the accessor must drop the cache.
        let (mut g, gt, ..) = abs_diff();
        assert!(g.slices().is_functional(gt));
        assert_eq!(g.functional_nodes().len(), 4);
        g.node_mut(gt).unwrap().op = Op::Const(1);
        assert!(!g.slices().is_functional(gt), "rebuilt after payload mutation");
        assert_eq!(g.functional_nodes().len(), 3);
    }

    #[test]
    fn functional_mask_matches_ops() {
        let (g, gt, ..) = abs_diff();
        let sl = g.slices();
        assert!(sl.is_functional(gt));
        for &i in g.inputs() {
            assert!(!sl.is_functional(i));
        }
        assert!(!sl.is_functional(NodeId::new(999)), "out of range is not functional");
        assert_eq!(sl.slot_count(), 7);
    }

    #[test]
    fn unknown_ids_have_empty_adjacency() {
        let (g, ..) = abs_diff();
        assert!(g.slices().preds(NodeId::new(999)).is_empty());
        assert!(g.slices().succs(NodeId::new(999)).is_empty());
    }

    #[test]
    fn clone_preserves_and_then_diverges() {
        let (g, gt, amb, ..) = abs_diff();
        let _ = g.slices();
        let mut h = g.clone();
        h.add_control_edge(gt, amb).unwrap();
        assert!(h.slices().succs(gt).contains(&amb));
        assert!(!g.slices().succs(gt).contains(&amb), "original untouched");
    }
}
