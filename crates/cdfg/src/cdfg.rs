//! The Control Data Flow Graph itself.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use crate::error::CdfgError;
use crate::graph::{DiGraph, EdgeId, NodeId};
use crate::op::Op;
use crate::slices::Slices;
use crate::stats::OpCounts;

/// Input port index of a multiplexor's select (control) operand.
pub const MUX_SELECT_PORT: u16 = 0;
/// Input port index of the value chosen when the select is 0.
pub const MUX_FALSE_PORT: u16 = 1;
/// Input port index of the value chosen when the select is 1.
pub const MUX_TRUE_PORT: u16 = 2;

/// Payload stored at each CDFG node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeData {
    /// The operation performed by the node.
    pub op: Op,
    /// Human-readable name (input/output port name or an auto-generated
    /// operation label).
    pub name: String,
    /// Word width of the operation result in bits.
    pub bitwidth: u32,
}

impl NodeData {
    /// Creates node data with the given operation, name and bitwidth.
    pub fn new(op: Op, name: impl Into<String>, bitwidth: u32) -> Self {
        NodeData { op, name: name.into(), bitwidth }
    }
}

/// Kind of dependence carried by a CDFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// A value flows from the source to input port `port` of the destination.
    Data {
        /// Destination input port index (see the `MUX_*_PORT` constants for
        /// multiplexors; binary operations use ports 0 and 1).
        port: u16,
    },
    /// A pure precedence constraint with no value flow.  Power-management
    /// scheduling adds these between the last control-cone node and the top
    /// data-cone nodes of each managed multiplexor (step 10 of the paper's
    /// algorithm).
    Control,
}

impl EdgeKind {
    /// Returns the destination port if this is a data edge.
    pub fn port(self) -> Option<u16> {
        match self {
            EdgeKind::Data { port } => Some(port),
            EdgeKind::Control => None,
        }
    }

    /// Returns `true` for data edges.
    pub fn is_data(self) -> bool {
        matches!(self, EdgeKind::Data { .. })
    }

    /// Returns `true` for control (precedence-only) edges.
    pub fn is_control(self) -> bool {
        matches!(self, EdgeKind::Control)
    }
}

/// Payload stored at each CDFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeData {
    /// Dependence kind.
    pub kind: EdgeKind,
}

impl EdgeData {
    /// Creates a data edge payload targeting `port`.
    pub fn data(port: u16) -> Self {
        EdgeData { kind: EdgeKind::Data { port } }
    }

    /// Creates a control (precedence-only) edge payload.
    pub fn control() -> Self {
        EdgeData { kind: EdgeKind::Control }
    }
}

/// Default datapath bitwidth; the paper assumes an 8-bit datapath for all
/// examples.
pub const DEFAULT_BITWIDTH: u32 = 8;

/// A Control Data Flow Graph: operations connected by data and control
/// dependences, with named primary inputs and outputs.
///
/// The graph must be acyclic.  Conditionals are represented structurally with
/// [`Op::Mux`] nodes whose select operand is the condition.
#[derive(Debug, Clone, Default)]
pub struct Cdfg {
    name: String,
    graph: DiGraph<NodeData, EdgeData>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    default_bitwidth: u32,
    next_label: u32,
    /// Lazily built compact adjacency view; dropped on every structural
    /// mutation so it can never go stale.
    slices: OnceLock<Slices>,
}

impl Cdfg {
    /// Creates an empty CDFG with the given design name and the paper's
    /// default 8-bit datapath.
    pub fn new(name: impl Into<String>) -> Self {
        Cdfg {
            name: name.into(),
            graph: DiGraph::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            default_bitwidth: DEFAULT_BITWIDTH,
            next_label: 0,
            slices: OnceLock::new(),
        }
    }

    /// Invalidates the cached adjacency view; called by every structural
    /// mutation.
    fn touch(&mut self) {
        self.slices = OnceLock::new();
    }

    /// The compact slice adjacency view (CSR arrays, cached topological
    /// order, functional-node list), built lazily and reused until the graph
    /// is mutated.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic (only possible mid-construction; the
    /// public mutators never leave a cycle behind).
    pub fn slices(&self) -> &Slices {
        self.slices.get_or_init(|| Slices::build(self))
    }

    /// Immediate predecessors via data or control edges as a borrowed slice
    /// (deduplicated, ascending).  Allocation-free equivalent of
    /// [`Cdfg::predecessors`].
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        self.slices().preds(id)
    }

    /// Immediate successors via data or control edges as a borrowed slice
    /// (deduplicated, ascending).  Allocation-free equivalent of
    /// [`Cdfg::successors`].
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        self.slices().succs(id)
    }

    /// Creates an empty CDFG with an explicit default bitwidth.
    pub fn with_bitwidth(name: impl Into<String>, bitwidth: u32) -> Self {
        let mut g = Cdfg::new(name);
        g.default_bitwidth = bitwidth;
        g
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The default datapath bitwidth applied to new nodes.
    pub fn default_bitwidth(&self) -> u32 {
        self.default_bitwidth
    }

    /// Read access to the underlying graph container.
    pub fn graph(&self) -> &DiGraph<NodeData, EdgeData> {
        &self.graph
    }

    /// Number of nodes (including inputs, constants and outputs).
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges (data and control).
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Primary input nodes in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output nodes in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    fn fresh_label(&mut self, op: Op) -> String {
        let label = format!("{}_{}", op.mnemonic(), self.next_label);
        self.next_label += 1;
        label
    }

    /// Adds a primary input with the given name and returns its node id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        self.touch();
        let data = NodeData::new(Op::Input, name, self.default_bitwidth);
        let id = self.graph.add_node(data);
        self.inputs.push(id);
        id
    }

    /// Adds a constant node with the given value.
    pub fn add_const(&mut self, value: i64) -> NodeId {
        self.touch();
        let name = format!("c{value}");
        self.graph.add_node(NodeData::new(Op::Const(value), name, self.default_bitwidth))
    }

    /// Adds a functional operation node fed by `operands` (in port order).
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::ArityMismatch`] if the operand count does not
    /// match [`Op::arity`], [`CdfgError::UnknownNode`] if an operand id is
    /// stale, and [`CdfgError::InvalidNodeRole`] if the operation is an
    /// input, constant or output (use the dedicated methods for those) or if
    /// an operand is an output node.
    pub fn add_op(&mut self, op: Op, operands: &[NodeId]) -> Result<NodeId, CdfgError> {
        if !op.is_functional() {
            return Err(CdfgError::InvalidNodeRole {
                node: NodeId::new(u32::MAX),
                reason: "add_op only accepts functional operations",
            });
        }
        if operands.len() != op.arity() {
            return Err(CdfgError::ArityMismatch {
                op: op.mnemonic(),
                expected: op.arity(),
                found: operands.len(),
            });
        }
        for &src in operands {
            if !self.graph.contains_node(src) {
                return Err(CdfgError::UnknownNode(src));
            }
            if self.graph.node(src).expect("checked").op.is_output() {
                return Err(CdfgError::InvalidNodeRole {
                    node: src,
                    reason: "output nodes cannot feed operations",
                });
            }
        }
        self.touch();
        let name = self.fresh_label(op);
        let id = self.graph.add_node(NodeData::new(op, name, self.default_bitwidth));
        for (port, &src) in operands.iter().enumerate() {
            self.graph.add_edge(src, id, EdgeData::data(port as u16));
        }
        Ok(id)
    }

    /// Adds a multiplexor node: `select` chooses between `when_false`
    /// (select = 0) and `when_true` (select = 1).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cdfg::add_op`].
    pub fn add_mux(
        &mut self,
        select: NodeId,
        when_false: NodeId,
        when_true: NodeId,
    ) -> Result<NodeId, CdfgError> {
        self.add_op(Op::Mux, &[select, when_false, when_true])
    }

    /// Adds a primary output named `name` driven by `src`.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::UnknownNode`] if `src` is stale,
    /// [`CdfgError::DuplicateName`] if an output with the same name exists,
    /// and [`CdfgError::InvalidNodeRole`] if `src` is itself an output.
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        src: NodeId,
    ) -> Result<NodeId, CdfgError> {
        let name = name.into();
        if !self.graph.contains_node(src) {
            return Err(CdfgError::UnknownNode(src));
        }
        if self.graph.node(src).expect("checked").op.is_output() {
            return Err(CdfgError::InvalidNodeRole {
                node: src,
                reason: "outputs cannot drive outputs",
            });
        }
        if self
            .outputs
            .iter()
            .any(|&o| self.graph.node(o).map(|d| d.name.as_str()) == Some(name.as_str()))
        {
            return Err(CdfgError::DuplicateName(name));
        }
        self.touch();
        let id = self.graph.add_node(NodeData::new(Op::Output, name, self.default_bitwidth));
        self.graph.add_edge(src, id, EdgeData::data(0));
        self.outputs.push(id);
        Ok(id)
    }

    /// Adds a pure precedence (control) edge `before -> after`.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::UnknownNode`] if either endpoint is stale and
    /// [`CdfgError::CyclicGraph`] if the edge would create a cycle (the edge
    /// is not added in that case).
    pub fn add_control_edge(&mut self, before: NodeId, after: NodeId) -> Result<EdgeId, CdfgError> {
        if !self.graph.contains_node(before) {
            return Err(CdfgError::UnknownNode(before));
        }
        if !self.graph.contains_node(after) {
            return Err(CdfgError::UnknownNode(after));
        }
        self.touch();
        let id = self.graph.add_edge(before, after, EdgeData::control());
        if !self.graph.is_acyclic() {
            self.graph.remove_edge(id);
            return Err(CdfgError::CyclicGraph);
        }
        Ok(id)
    }

    /// Removes a previously added control edge.  Data edges cannot be removed
    /// through this method.
    ///
    /// Returns `true` if the edge existed and was a control edge.
    pub fn remove_control_edge(&mut self, edge: EdgeId) -> bool {
        match self.graph.edge(edge) {
            Some(data) if data.kind.is_control() => {
                self.touch();
                self.graph.remove_edge(edge);
                true
            }
            _ => false,
        }
    }

    /// Ids of all control edges currently present.
    pub fn control_edges(&self) -> Vec<EdgeId> {
        self.graph
            .edges()
            .filter(|(_, _, _, d)| d.kind.is_control())
            .map(|(e, _, _, _)| e)
            .collect()
    }

    /// Node payload accessor.
    pub fn node(&self, id: NodeId) -> Option<&NodeData> {
        self.graph.node(id)
    }

    /// Mutable node payload accessor.
    ///
    /// Invalidates the cached adjacency view: the payload's `op` determines
    /// the functional-node list and mask the view carries.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut NodeData> {
        self.touch();
        self.graph.node_mut(id)
    }

    /// The operation at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live node.
    pub fn op(&self, id: NodeId) -> Op {
        self.graph.node(id).expect("live node").op
    }

    /// Iterates over `(id, data)` for every node.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &NodeData)> + '_ {
        self.graph.nodes()
    }

    /// Iterates over ids of every node.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.node_ids()
    }

    /// Ids of all functional (execution-unit-occupying) nodes.
    pub fn functional_nodes(&self) -> Vec<NodeId> {
        self.slices().functional().to_vec()
    }

    /// Ids of all multiplexor nodes.
    pub fn mux_nodes(&self) -> Vec<NodeId> {
        self.graph.nodes().filter(|(_, d)| d.op.is_mux()).map(|(id, _)| id).collect()
    }

    /// Immediate predecessors via data or control edges (deduplicated,
    /// ascending order).  Prefer [`Cdfg::preds`] in hot paths: it borrows
    /// from the cached adjacency view instead of allocating.
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        self.preds(id).to_vec()
    }

    /// Immediate successors via data or control edges (deduplicated,
    /// ascending order).  Prefer [`Cdfg::succs`] in hot paths: it borrows
    /// from the cached adjacency view instead of allocating.
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        self.succs(id).to_vec()
    }

    /// The data operand feeding input port `port` of node `id`, if any.
    pub fn operand(&self, id: NodeId, port: u16) -> Option<NodeId> {
        self.graph.in_edges(id).iter().find_map(|&e| {
            let data = self.graph.edge(e)?;
            if data.kind.port() == Some(port) {
                self.graph.edge_endpoints(e).map(|(src, _)| src)
            } else {
                None
            }
        })
    }

    /// All data operands of node `id` in port order.
    pub fn operands(&self, id: NodeId) -> Vec<NodeId> {
        let mut by_port: BTreeMap<u16, NodeId> = BTreeMap::new();
        for &e in self.graph.in_edges(id) {
            if let (Some(data), Some((src, _))) = (self.graph.edge(e), self.graph.edge_endpoints(e))
            {
                if let Some(port) = data.kind.port() {
                    by_port.insert(port, src);
                }
            }
        }
        by_port.into_values().collect()
    }

    /// Successors of `id` reached through *data* edges only.
    pub fn data_successors(&self, id: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .graph
            .out_edges(id)
            .iter()
            .filter_map(|&e| {
                let data = self.graph.edge(e)?;
                if data.kind.is_data() {
                    self.graph.edge_endpoints(e).map(|(_, dst)| dst)
                } else {
                    None
                }
            })
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Operation statistics over the whole design (Table I columns).
    pub fn op_counts(&self) -> OpCounts {
        OpCounts::from_cdfg(self)
    }

    /// Deterministic topological order of all nodes.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic; use [`Cdfg::validate`] first when the
    /// graph comes from untrusted construction code.
    pub fn topological_order(&self) -> Vec<NodeId> {
        self.slices().topo().to_vec()
    }

    /// Length of the critical path measured in control steps (the minimum
    /// number of control steps in which the design can execute, column 2 of
    /// Table I).
    pub fn critical_path_length(&self) -> u32 {
        self.graph
            .longest_path_weight(|n| {
                u64::from(self.graph.node(n).map(|d| d.op.delay()).unwrap_or(0))
            })
            .expect("CDFG must be acyclic") as u32
    }

    /// Structural validation: arity/port completeness, acyclicity, port
    /// uniqueness, output sanity.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; see [`CdfgError`] for the cases.
    pub fn validate(&self) -> Result<(), CdfgError> {
        if self.outputs.is_empty() {
            return Err(CdfgError::NoOutputs);
        }
        if !self.graph.is_acyclic() {
            return Err(CdfgError::CyclicGraph);
        }
        for (id, data) in self.graph.nodes() {
            let arity = data.op.arity();
            let mut seen_ports: Vec<u16> = Vec::new();
            for &e in self.graph.in_edges(id) {
                let edge = self.graph.edge(e).expect("live edge");
                if let Some(port) = edge.kind.port() {
                    if seen_ports.contains(&port) {
                        return Err(CdfgError::DuplicatePort { node: id, port });
                    }
                    seen_ports.push(port);
                }
            }
            let expected_ports: usize = if data.op.is_output() { 1 } else { arity };
            for port in 0..expected_ports as u16 {
                if !seen_ports.contains(&port) {
                    return Err(CdfgError::MissingPort { node: id, port });
                }
            }
            if seen_ports.len() > expected_ports {
                return Err(CdfgError::ArityMismatch {
                    op: data.op.mnemonic(),
                    expected: expected_ports,
                    found: seen_ports.len(),
                });
            }
            if data.op.is_output() && self.graph.out_degree(id) != 0 {
                return Err(CdfgError::InvalidNodeRole {
                    node: id,
                    reason: "output has successors",
                });
            }
            if data.op.is_source() && !seen_ports.is_empty() {
                return Err(CdfgError::InvalidNodeRole {
                    node: id,
                    reason: "source node has data operands",
                });
            }
        }
        Ok(())
    }

    /// Evaluates the design on a set of primary input values, returning the
    /// value of each primary output by name.
    ///
    /// This is the *functional* (untimed) semantics used as a golden
    /// reference for the RTL simulator.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is missing a value for a primary input or if the
    /// graph fails validation assumptions (undriven ports).
    pub fn evaluate(&self, inputs: &BTreeMap<String, i64>) -> BTreeMap<String, i64> {
        let order = self.topological_order();
        let mut values: BTreeMap<NodeId, i64> = BTreeMap::new();
        for id in order {
            let data = self.graph.node(id).expect("live node");
            let value = match data.op {
                Op::Input => *inputs
                    .get(&data.name)
                    .unwrap_or_else(|| panic!("missing value for input `{}`", data.name)),
                Op::Const(c) => c,
                _ => {
                    let args: Vec<i64> = self
                        .operands(id)
                        .iter()
                        .map(|src| *values.get(src).expect("operand evaluated before use"))
                        .collect();
                    data.op.eval(&args)
                }
            };
            values.insert(id, value);
        }
        self.outputs
            .iter()
            .map(|&o| {
                let name = self.graph.node(o).expect("live output").name.clone();
                (name, *values.get(&o).expect("output evaluated"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn build_and_validate_abs_diff() {
        let (g, ..) = abs_diff();
        g.validate().unwrap();
        assert_eq!(g.inputs().len(), 2);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(g.node_count(), 7);
        // The comparison (or a subtraction) and the multiplexor chain: two
        // control steps minimum, matching Figure 1 of the paper.
        assert_eq!(g.critical_path_length(), 2);
    }

    #[test]
    fn evaluate_abs_diff() {
        let (g, ..) = abs_diff();
        let mut inputs = BTreeMap::new();
        inputs.insert("a".to_owned(), 9);
        inputs.insert("b".to_owned(), 4);
        assert_eq!(g.evaluate(&inputs)["abs"], 5);
        inputs.insert("a".to_owned(), 2);
        inputs.insert("b".to_owned(), 11);
        assert_eq!(g.evaluate(&inputs)["abs"], 9);
    }

    #[test]
    fn operand_ports_are_ordered() {
        let (g, gt, amb, bma, m) = abs_diff();
        assert_eq!(g.operands(m), vec![gt, bma, amb]);
        assert_eq!(g.operand(m, MUX_SELECT_PORT), Some(gt));
        assert_eq!(g.operand(m, MUX_FALSE_PORT), Some(bma));
        assert_eq!(g.operand(m, MUX_TRUE_PORT), Some(amb));
        assert_eq!(g.operand(m, 5), None);
    }

    #[test]
    fn arity_is_enforced() {
        let mut g = Cdfg::new("t");
        let a = g.add_input("a");
        let err = g.add_op(Op::Add, &[a]).unwrap_err();
        assert!(matches!(err, CdfgError::ArityMismatch { expected: 2, found: 1, .. }));
    }

    #[test]
    fn stale_operand_rejected() {
        let mut g = Cdfg::new("t");
        let a = g.add_input("a");
        let err = g.add_op(Op::Add, &[a, NodeId::new(99)]).unwrap_err();
        assert_eq!(err, CdfgError::UnknownNode(NodeId::new(99)));
    }

    #[test]
    fn outputs_cannot_feed_ops() {
        let mut g = Cdfg::new("t");
        let a = g.add_input("a");
        let o = g.add_output("o", a).unwrap();
        let err = g.add_op(Op::Neg, &[o]).unwrap_err();
        assert!(matches!(err, CdfgError::InvalidNodeRole { .. }));
    }

    #[test]
    fn duplicate_output_names_rejected() {
        let mut g = Cdfg::new("t");
        let a = g.add_input("a");
        g.add_output("o", a).unwrap();
        let err = g.add_output("o", a).unwrap_err();
        assert_eq!(err, CdfgError::DuplicateName("o".to_owned()));
    }

    #[test]
    fn validate_rejects_empty_design() {
        let g = Cdfg::new("empty");
        assert_eq!(g.validate().unwrap_err(), CdfgError::NoOutputs);
    }

    #[test]
    fn control_edges_reject_cycles() {
        let (mut g, gt, amb, _, m) = abs_diff();
        // gt -> amb is fine (gt is already an ancestor-side node).
        g.add_control_edge(gt, amb).unwrap();
        // m -> gt would create a cycle: gt feeds m through data edges.
        let err = g.add_control_edge(m, gt).unwrap_err();
        assert_eq!(err, CdfgError::CyclicGraph);
        // Graph is still valid because the offending edge was rolled back.
        g.validate().unwrap();
    }

    #[test]
    fn control_edges_can_be_removed() {
        let (mut g, gt, amb, ..) = abs_diff();
        let e = g.add_control_edge(gt, amb).unwrap();
        assert_eq!(g.control_edges(), vec![e]);
        assert!(g.remove_control_edge(e));
        assert!(g.control_edges().is_empty());
        assert!(!g.remove_control_edge(e), "already removed");
    }

    #[test]
    fn data_successors_exclude_control_edges() {
        let (mut g, gt, amb, _, m) = abs_diff();
        g.add_control_edge(gt, amb).unwrap();
        assert_eq!(g.data_successors(gt), vec![m]);
        assert!(g.successors(gt).contains(&amb));
    }

    #[test]
    fn mux_and_functional_node_queries() {
        let (g, _, _, _, m) = abs_diff();
        assert_eq!(g.mux_nodes(), vec![m]);
        assert_eq!(g.functional_nodes().len(), 4);
        let counts = g.op_counts();
        assert_eq!(counts.mux, 1);
        assert_eq!(counts.comp, 1);
        assert_eq!(counts.sub, 2);
        assert_eq!(counts.add, 0);
    }

    #[test]
    fn default_bitwidth_is_eight() {
        let (g, _, _, _, m) = abs_diff();
        assert_eq!(g.default_bitwidth(), 8);
        assert_eq!(g.node(m).unwrap().bitwidth, 8);
        let w = Cdfg::with_bitwidth("wide", 16);
        assert_eq!(w.default_bitwidth(), 16);
    }
}
