//! A small, dependency-free directed graph container.
//!
//! [`DiGraph`] stores node and edge payloads in slot vectors with free lists,
//! so ids stay stable across removals.  It provides exactly the primitives the
//! rest of the synthesis flow needs: adjacency queries, removal, topological
//! sort, cycle detection and reachability.

use std::collections::VecDeque;
use std::fmt;

/// Identifier of a node inside a [`DiGraph`].
///
/// Node ids are small integers that remain valid until the node is removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// Mostly useful in tests; normal code receives ids from
    /// [`DiGraph::add_node`].
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge inside a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a raw index.
    pub fn new(index: u32) -> Self {
        EdgeId(index)
    }

    /// Returns the raw index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct NodeSlot<N> {
    payload: N,
    out_edges: Vec<EdgeId>,
    in_edges: Vec<EdgeId>,
}

#[derive(Debug, Clone)]
struct EdgeSlot<E> {
    payload: E,
    src: NodeId,
    dst: NodeId,
}

/// A directed graph with stable ids and slot-based storage.
///
/// `N` is the node payload type and `E` the edge payload type.  The graph is
/// a multigraph: parallel edges between the same pair of nodes are allowed
/// (the CDFG uses this for operations whose two operands are the same value,
/// e.g. `a * a`).
#[derive(Debug, Clone)]
pub struct DiGraph<N, E> {
    nodes: Vec<Option<NodeSlot<N>>>,
    edges: Vec<Option<EdgeSlot<E>>>,
    free_nodes: Vec<u32>,
    free_edges: Vec<u32>,
    node_count: usize,
    edge_count: usize,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        DiGraph::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            free_nodes: Vec::new(),
            free_edges: Vec::new(),
            node_count: 0,
            edge_count: 0,
        }
    }

    /// Creates an empty graph with room for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            ..DiGraph::new()
        }
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_count == 0
    }

    /// Adds a node with the given payload and returns its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        self.node_count += 1;
        let slot = NodeSlot { payload, out_edges: Vec::new(), in_edges: Vec::new() };
        if let Some(idx) = self.free_nodes.pop() {
            self.nodes[idx as usize] = Some(slot);
            NodeId(idx)
        } else {
            self.nodes.push(Some(slot));
            NodeId((self.nodes.len() - 1) as u32)
        }
    }

    /// Returns `true` if `id` refers to a live node.
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(Option::is_some)
    }

    /// Returns `true` if `id` refers to a live edge.
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges.get(id.index()).is_some_and(Option::is_some)
    }

    /// Borrows the payload of node `id`, if it exists.
    pub fn node(&self, id: NodeId) -> Option<&N> {
        self.nodes.get(id.index())?.as_ref().map(|s| &s.payload)
    }

    /// Mutably borrows the payload of node `id`, if it exists.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut N> {
        self.nodes.get_mut(id.index())?.as_mut().map(|s| &mut s.payload)
    }

    /// Borrows the payload of edge `id`, if it exists.
    pub fn edge(&self, id: EdgeId) -> Option<&E> {
        self.edges.get(id.index())?.as_ref().map(|s| &s.payload)
    }

    /// Mutably borrows the payload of edge `id`, if it exists.
    pub fn edge_mut(&mut self, id: EdgeId) -> Option<&mut E> {
        self.edges.get_mut(id.index())?.as_mut().map(|s| &mut s.payload)
    }

    /// Returns the `(source, destination)` endpoints of edge `id`.
    pub fn edge_endpoints(&self, id: EdgeId) -> Option<(NodeId, NodeId)> {
        self.edges.get(id.index())?.as_ref().map(|s| (s.src, s.dst))
    }

    /// Adds a directed edge `src -> dst` carrying `payload`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a live node.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, payload: E) -> EdgeId {
        assert!(self.contains_node(src), "add_edge: source {src} not in graph");
        assert!(self.contains_node(dst), "add_edge: destination {dst} not in graph");
        self.edge_count += 1;
        let slot = EdgeSlot { payload, src, dst };
        let id = if let Some(idx) = self.free_edges.pop() {
            self.edges[idx as usize] = Some(slot);
            EdgeId(idx)
        } else {
            self.edges.push(Some(slot));
            EdgeId((self.edges.len() - 1) as u32)
        };
        self.nodes[src.index()].as_mut().expect("live src").out_edges.push(id);
        self.nodes[dst.index()].as_mut().expect("live dst").in_edges.push(id);
        id
    }

    /// Removes edge `id`, returning its payload if it existed.
    pub fn remove_edge(&mut self, id: EdgeId) -> Option<E> {
        let slot = self.edges.get_mut(id.index())?.take()?;
        self.edge_count -= 1;
        self.free_edges.push(id.index() as u32);
        if let Some(Some(src)) = self.nodes.get_mut(slot.src.index()) {
            src.out_edges.retain(|&e| e != id);
        }
        if let Some(Some(dst)) = self.nodes.get_mut(slot.dst.index()) {
            dst.in_edges.retain(|&e| e != id);
        }
        Some(slot.payload)
    }

    /// Removes node `id` and all incident edges, returning its payload.
    pub fn remove_node(&mut self, id: NodeId) -> Option<N> {
        if !self.contains_node(id) {
            return None;
        }
        let incident: Vec<EdgeId> = self.nodes[id.index()]
            .as_ref()
            .map(|s| s.in_edges.iter().chain(s.out_edges.iter()).copied().collect())
            .unwrap_or_default();
        for e in incident {
            self.remove_edge(e);
        }
        let slot = self.nodes[id.index()].take()?;
        self.node_count -= 1;
        self.free_nodes.push(id.index() as u32);
        Some(slot.payload)
    }

    /// Iterates over the ids of all live nodes in ascending id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|_| NodeId(i as u32)))
    }

    /// Iterates over the ids of all live edges in ascending id order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|_| EdgeId(i as u32)))
    }

    /// Iterates over `(id, payload)` pairs of all live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|slot| (NodeId(i as u32), &slot.payload)))
    }

    /// Iterates over `(id, src, dst, payload)` tuples of all live edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref().map(|slot| (EdgeId(i as u32), slot.src, slot.dst, &slot.payload))
        })
    }

    /// Ids of edges leaving `id`.
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        self.nodes
            .get(id.index())
            .and_then(Option::as_ref)
            .map(|s| s.out_edges.as_slice())
            .unwrap_or(&[])
    }

    /// Ids of edges entering `id`.
    pub fn in_edges(&self, id: NodeId) -> &[EdgeId] {
        self.nodes
            .get(id.index())
            .and_then(Option::as_ref)
            .map(|s| s.in_edges.as_slice())
            .unwrap_or(&[])
    }

    /// Successor node ids of `id` (duplicates possible for parallel edges).
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        self.out_edges(id).iter().filter_map(|&e| self.edge_endpoints(e).map(|(_, d)| d)).collect()
    }

    /// Predecessor node ids of `id` (duplicates possible for parallel edges).
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        self.in_edges(id).iter().filter_map(|&e| self.edge_endpoints(e).map(|(s, _)| s)).collect()
    }

    /// In-degree of `id` (number of incoming edges).
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.in_edges(id).len()
    }

    /// Out-degree of `id` (number of outgoing edges).
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out_edges(id).len()
    }

    /// Returns a topological ordering of the live nodes, or `None` if the
    /// graph contains a cycle.
    ///
    /// Ties are broken by ascending node id so the result is deterministic.
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let mut indegree = vec![0usize; self.nodes.len()];
        for (_, _, dst, _) in self.edges() {
            indegree[dst.index()] += 1;
        }
        let mut ready: VecDeque<NodeId> =
            self.node_ids().filter(|n| indegree[n.index()] == 0).collect();
        let mut order = Vec::with_capacity(self.node_count);
        while let Some(n) = ready.pop_front() {
            order.push(n);
            // Collect first to keep deterministic ascending insertion order.
            let mut next: Vec<NodeId> = Vec::new();
            for &e in self.out_edges(n) {
                let (_, dst) = self.edge_endpoints(e).expect("live edge");
                indegree[dst.index()] -= 1;
                if indegree[dst.index()] == 0 {
                    next.push(dst);
                }
            }
            next.sort();
            ready.extend(next);
        }
        if order.len() == self.node_count {
            Some(order)
        } else {
            None
        }
    }

    /// Returns `true` if the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Set of nodes reachable from `start` by following edges forwards,
    /// excluding `start` itself.
    pub fn reachable_from(&self, start: NodeId) -> Vec<NodeId> {
        self.reach(start, true)
    }

    /// Set of nodes that can reach `start` by following edges forwards
    /// (i.e. reachable backwards from `start`), excluding `start` itself.
    pub fn reaching(&self, start: NodeId) -> Vec<NodeId> {
        self.reach(start, false)
    }

    fn reach(&self, start: NodeId, forward: bool) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        let mut out = Vec::new();
        seen[start.index()] = true;
        while let Some(n) = stack.pop() {
            let next = if forward { self.successors(n) } else { self.predecessors(n) };
            for m in next {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    out.push(m);
                    stack.push(m);
                }
            }
        }
        out.sort();
        out
    }

    /// Length (in edges) of the longest path in the graph, or `None` if the
    /// graph is cyclic.  Node weights are supplied by `node_weight` (the
    /// length of a path is the sum of its node weights).
    pub fn longest_path_weight<F>(&self, node_weight: F) -> Option<u64>
    where
        F: Fn(NodeId) -> u64,
    {
        let order = self.topological_order()?;
        let mut dist = vec![0u64; self.nodes.len()];
        let mut best = 0;
        for &n in &order {
            let w = dist[n.index()] + node_weight(n);
            best = best.max(w);
            for m in self.successors(n) {
                dist[m.index()] = dist[m.index()].max(w);
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, ()>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        (g, [a, b, c, d])
    }

    #[test]
    fn add_and_query_nodes() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.node(a), Some(&"a"));
        assert_eq!(g.successors(a), vec![b, c]);
        assert_eq!(g.predecessors(d), vec![b, c]);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.out_degree(a), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn topological_order_respects_edges() {
        let (g, [a, b, c, d]) = diamond();
        let order = g.topological_order().expect("acyclic");
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn cycle_detection() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        assert!(g.is_acyclic());
        g.add_edge(b, a, ());
        assert!(!g.is_acyclic());
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let (mut g, [_, b, _, d]) = diamond();
        assert_eq!(g.remove_node(b), Some("b"));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.predecessors(d).len(), 1);
        assert!(!g.contains_node(b));
    }

    #[test]
    fn removed_ids_are_reused() {
        let mut g: DiGraph<u32, ()> = DiGraph::new();
        let a = g.add_node(1);
        g.remove_node(a);
        let b = g.add_node(2);
        assert_eq!(a, b, "slot is reused");
        assert_eq!(g.node(b), Some(&2));
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let mut g: DiGraph<(), u8> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e = g.add_edge(a, b, 7);
        assert_eq!(g.remove_edge(e), Some(7));
        assert_eq!(g.edge_count(), 0);
        assert!(g.successors(a).is_empty());
        assert!(g.predecessors(b).is_empty());
        assert_eq!(g.remove_edge(e), None);
    }

    #[test]
    fn reachability_forward_and_backward() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.reachable_from(a), vec![b, c, d]);
        assert_eq!(g.reaching(d), vec![a, b, c]);
        assert!(g.reachable_from(d).is_empty());
        assert!(g.reaching(a).is_empty());
    }

    #[test]
    fn longest_path_unit_weights() {
        let (g, _) = diamond();
        assert_eq!(g.longest_path_weight(|_| 1), Some(3));
        let mut cyclic: DiGraph<(), ()> = DiGraph::new();
        let a = cyclic.add_node(());
        cyclic.add_edge(a, a, ());
        assert_eq!(cyclic.longest_path_weight(|_| 1), None);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g: DiGraph<(), u8> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0);
        g.add_edge(a, b, 1);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(a), vec![b, b]);
    }

    #[test]
    #[should_panic(expected = "add_edge")]
    fn add_edge_to_missing_node_panics() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId::new(42), ());
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId::new(5).to_string(), "n5");
        assert_eq!(EdgeId::new(7).to_string(), "e7");
    }
}
