//! Graphviz DOT export of CDFGs (handy for debugging schedules and the
//! control edges added by power-management scheduling).

use std::fmt::Write as _;

use crate::cdfg::{Cdfg, EdgeKind};
use crate::op::Op;

/// Renders the CDFG in Graphviz DOT syntax.
///
/// Data edges are solid and labelled with their destination port; control
/// (precedence) edges are dashed, matching the dashed arrows of Figure 2(b)
/// in the paper.
pub fn to_dot(cdfg: &Cdfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", cdfg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    for (id, data) in cdfg.iter_nodes() {
        let (shape, label) = match data.op {
            Op::Input => ("ellipse", format!("{} (in)", data.name)),
            Op::Const(c) => ("ellipse", format!("{c}")),
            Op::Output => ("ellipse", format!("{} (out)", data.name)),
            Op::Mux => ("trapezium", "MUX".to_owned()),
            _ => ("box", data.op.to_string()),
        };
        let _ = writeln!(out, "  {} [shape={shape}, label=\"{label}\"];", id);
    }
    for (_, src, dst, data) in cdfg.graph().edges() {
        match data.kind {
            EdgeKind::Data { port } => {
                let _ = writeln!(out, "  {src} -> {dst} [label=\"{port}\"];");
            }
            EdgeKind::Control => {
                let _ = writeln!(out, "  {src} -> {dst} [style=dashed, color=gray];");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    #[test]
    fn dot_output_mentions_every_node_and_edge_style() {
        let mut g = Cdfg::new("dot_test");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let cmp = g.add_op(Op::Gt, &[a, b]).unwrap();
        let diff = g.add_op(Op::Sub, &[a, b]).unwrap();
        let k = g.add_const(0);
        let m = g.add_mux(cmp, k, diff).unwrap();
        g.add_output("o", m).unwrap();
        g.add_control_edge(cmp, diff).unwrap();

        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"dot_test\""));
        assert!(dot.contains("MUX"));
        assert!(dot.contains("(in)"));
        assert!(dot.contains("(out)"));
        assert!(dot.contains("style=dashed"), "control edges are dashed");
        assert!(dot.trim_end().ends_with('}'));
        // One line per node and edge plus header/footer/rankdir.
        let lines = dot.lines().count();
        assert_eq!(lines, 3 + g.node_count() + g.edge_count());
    }
}
