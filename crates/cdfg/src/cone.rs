//! Transitive fanin / fanout ("cone") queries.
//!
//! The power-management algorithm (step 3 of Figure 3 in the paper) needs,
//! for every multiplexor, the transitive fanin cone of each of its three
//! inputs, restricted to functional nodes and stopping at primary inputs and
//! constants.  These helpers are generic over the CDFG and are also used by
//! the binding and RTL stages.

use std::collections::BTreeSet;

use crate::cdfg::Cdfg;
use crate::graph::NodeId;

/// Transitive fanin of `node` following *data* edges backwards, excluding
/// `node` itself.  Inputs and constants are included; the caller filters if
/// only functional nodes are wanted.
pub fn transitive_fanin(cdfg: &Cdfg, node: NodeId) -> BTreeSet<NodeId> {
    let mut seen = BTreeSet::new();
    let mut stack: Vec<NodeId> = cdfg.operands(node);
    while let Some(n) = stack.pop() {
        if seen.insert(n) {
            stack.extend(cdfg.operands(n));
        }
    }
    seen
}

/// Transitive fanin of a specific input *port* of `node`: the driver of that
/// port plus its own transitive fanin.
pub fn port_fanin(cdfg: &Cdfg, node: NodeId, port: u16) -> BTreeSet<NodeId> {
    let mut set = BTreeSet::new();
    if let Some(driver) = cdfg.operand(node, port) {
        set.insert(driver);
        set.extend(transitive_fanin(cdfg, driver));
    }
    set
}

/// Transitive fanout of `node` following *data* edges forwards, excluding
/// `node` itself.  Output nodes are included.
pub fn transitive_fanout(cdfg: &Cdfg, node: NodeId) -> BTreeSet<NodeId> {
    let mut seen = BTreeSet::new();
    let mut stack: Vec<NodeId> = cdfg.data_successors(node);
    while let Some(n) = stack.pop() {
        if seen.insert(n) {
            stack.extend(cdfg.data_successors(n));
        }
    }
    seen
}

/// Only the functional members of a node set (drops inputs, constants and
/// outputs).
pub fn functional_only(cdfg: &Cdfg, set: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
    set.iter()
        .copied()
        .filter(|&n| cdfg.node(n).map(|d| d.op.is_functional()).unwrap_or(false))
        .collect()
}

/// Distance (in data edges) from `node` to the nearest primary output, or
/// `None` if no output is reachable.  The paper processes multiplexors
/// "closer to the outputs" first; this is the metric used for that ordering.
pub fn distance_to_output(cdfg: &Cdfg, node: NodeId) -> Option<u32> {
    // Breadth-first search forwards over data edges.
    let mut frontier = vec![node];
    let mut seen = BTreeSet::new();
    seen.insert(node);
    let mut depth = 0u32;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for n in frontier {
            if cdfg.node(n).map(|d| d.op.is_output()).unwrap_or(false) {
                return Some(depth);
            }
            for s in cdfg.data_successors(n) {
                if seen.insert(s) {
                    next.push(s);
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    None
}

/// Distance (in data edges) from *every* node to its nearest primary output
/// in one pass: a multi-source reverse breadth-first search from all outputs
/// over data predecessors.  Slot `i` holds the distance of `NodeId(i)`, or
/// `None` when no output is reachable from that node (dead code) or the slot
/// is not a live node.
///
/// Per node, the value equals [`distance_to_output`]; computing all of them
/// at once turns the mux-ordering passes from one forward BFS per
/// multiplexor into a single sweep over the graph.
pub fn distances_to_outputs(cdfg: &Cdfg) -> Vec<Option<u32>> {
    let slices = cdfg.slices();
    let mut dist: Vec<Option<u32>> = vec![None; slices.slot_count()];
    let mut frontier: Vec<NodeId> = Vec::new();
    for &o in cdfg.outputs() {
        if dist[o.index()].is_none() {
            dist[o.index()] = Some(0);
            frontier.push(o);
        }
    }
    let mut depth = 0u32;
    let mut next: Vec<NodeId> = Vec::new();
    while !frontier.is_empty() {
        depth += 1;
        next.clear();
        for &n in &frontier {
            for &p in slices.data_preds(n) {
                if dist[p.index()].is_none() {
                    dist[p.index()] = Some(depth);
                    next.push(p);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    /// Two nested conditionals:
    /// `out = (a > b) ? ((c > d) ? c + d : c - d) : a + b`
    fn nested() -> (Cdfg, [NodeId; 10]) {
        let mut g = Cdfg::new("nested");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let outer_cmp = g.add_op(Op::Gt, &[a, b]).unwrap();
        let inner_cmp = g.add_op(Op::Gt, &[c, d]).unwrap();
        let cd_add = g.add_op(Op::Add, &[c, d]).unwrap();
        let cd_sub = g.add_op(Op::Sub, &[c, d]).unwrap();
        let inner_mux = g.add_mux(inner_cmp, cd_sub, cd_add).unwrap();
        let ab_add = g.add_op(Op::Add, &[a, b]).unwrap();
        let outer_mux = g.add_mux(outer_cmp, ab_add, inner_mux).unwrap();
        g.add_output("out", outer_mux).unwrap();
        (g, [a, b, c, d, outer_cmp, inner_cmp, cd_add, cd_sub, inner_mux, outer_mux])
    }

    #[test]
    fn fanin_of_mux_ports() {
        let (g, [a, b, c, d, outer_cmp, inner_cmp, cd_add, cd_sub, inner_mux, outer_mux]) =
            nested();
        let sel = port_fanin(&g, outer_mux, crate::MUX_SELECT_PORT);
        assert!(sel.contains(&outer_cmp));
        assert!(sel.contains(&a) && sel.contains(&b));
        assert!(!sel.contains(&inner_mux));

        let true_cone = port_fanin(&g, outer_mux, crate::MUX_TRUE_PORT);
        assert!(true_cone.contains(&inner_mux));
        assert!(true_cone.contains(&inner_cmp));
        assert!(true_cone.contains(&cd_add) && true_cone.contains(&cd_sub));
        assert!(true_cone.contains(&c) && true_cone.contains(&d));
        assert!(!true_cone.contains(&outer_cmp));
    }

    #[test]
    fn fanout_reaches_outputs() {
        let (g, [_, _, _, _, _, inner_cmp, ..]) = nested();
        let fanout = transitive_fanout(&g, inner_cmp);
        let has_output = fanout.iter().any(|&n| g.node(n).unwrap().op.is_output());
        assert!(has_output);
    }

    #[test]
    fn functional_only_drops_io() {
        let (g, [_, _, _, _, _, _, _, _, _, outer_mux]) = nested();
        let cone = port_fanin(&g, outer_mux, crate::MUX_TRUE_PORT);
        let fns = functional_only(&g, &cone);
        assert!(fns.iter().all(|&n| g.node(n).unwrap().op.is_functional()));
        assert!(fns.len() < cone.len(), "inputs were dropped");
    }

    #[test]
    fn distance_to_output_orders_muxes() {
        let (g, [.., inner_mux, outer_mux]) = nested();
        let d_outer = distance_to_output(&g, outer_mux).unwrap();
        let d_inner = distance_to_output(&g, inner_mux).unwrap();
        assert!(d_outer < d_inner, "outer mux is closer to the output");
        // An input that only feeds dead logic would return None; here every
        // node reaches the output.
        for n in g.node_ids() {
            assert!(distance_to_output(&g, n).is_some());
        }
    }

    #[test]
    fn distances_to_outputs_match_per_node_queries() {
        let (mut g, _) = nested();
        // Add dead code so the one-pass sweep has unreachable nodes to agree
        // on as well.
        let a = g.inputs()[0];
        let b = g.inputs()[1];
        let dead = g.add_op(Op::Mul, &[a, b]).unwrap();
        let deader = g.add_op(Op::Neg, &[dead]).unwrap();
        let all = distances_to_outputs(&g);
        for n in g.node_ids() {
            assert_eq!(all[n.index()], distance_to_output(&g, n), "distance of {n}");
        }
        assert_eq!(all[dead.index()], None);
        assert_eq!(all[deader.index()], None);
    }

    #[test]
    fn fanin_excludes_self_and_is_transitive() {
        let (g, [a, b, _, _, outer_cmp, ..]) = nested();
        let cone = transitive_fanin(&g, outer_cmp);
        assert!(!cone.contains(&outer_cmp));
        assert_eq!(cone, [a, b].into_iter().collect());
    }
}
