//! Control Data Flow Graph (CDFG) intermediate representation for
//! behavioral synthesis.
//!
//! This crate is the IR substrate underneath the power-management-aware
//! scheduling flow of Monteiro et al. (DAC 1996).  A [`Cdfg`] is a directed
//! acyclic graph whose nodes are primitive operations ([`Op`]) — arithmetic,
//! comparisons, multiplexors, inputs, constants and outputs — and whose edges
//! carry either data dependences (with a destination port) or pure precedence
//! ("control") constraints added by later passes.
//!
//! The crate provides:
//!
//! * a small, dependency-free directed-graph container ([`graph::DiGraph`]),
//! * the operation set and its evaluation semantics ([`Op`], [`OpClass`]),
//! * the CDFG itself with structural validation, topological ordering,
//!   critical-path analysis, cone (transitive fanin/fanout) queries and
//!   operation statistics ([`Cdfg`], [`OpCounts`]),
//! * a cached, allocation-free CSR adjacency view over the graph
//!   ([`Slices`], the scheduling kernels' fast path),
//! * a fluent [`CdfgBuilder`] and Graphviz export ([`dot`]).
//!
//! # Example
//!
//! Building the `|a - b|` example from Figure 1 of the paper:
//!
//! ```
//! use cdfg::{Cdfg, Op};
//!
//! # fn main() -> Result<(), cdfg::CdfgError> {
//! let mut g = Cdfg::new("abs_diff");
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let gt = g.add_op(Op::Gt, &[a, b])?;
//! let amb = g.add_op(Op::Sub, &[a, b])?;
//! let bma = g.add_op(Op::Sub, &[b, a])?;
//! let m = g.add_mux(gt, bma, amb)?;
//! g.add_output("abs", m)?;
//! g.validate()?;
//! assert_eq!(g.op_counts().mux, 1);
//! assert_eq!(g.critical_path_length(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod builder;
pub mod cdfg;
pub mod cone;
pub mod dot;
pub mod error;
pub mod graph;
pub mod op;
pub mod slices;
pub mod stats;

pub use crate::bitset::DenseBitSet;
pub use crate::builder::CdfgBuilder;
pub use crate::cdfg::{
    Cdfg, EdgeData, EdgeKind, NodeData, MUX_FALSE_PORT, MUX_SELECT_PORT, MUX_TRUE_PORT,
};
pub use crate::error::CdfgError;
pub use crate::graph::{DiGraph, EdgeId, NodeId};
pub use crate::op::{CompareKind, Op, OpClass};
pub use crate::slices::Slices;
pub use crate::stats::OpCounts;
