//! Property-based tests over random CDFGs.

use std::collections::BTreeMap;

use cdfg::{cone, Cdfg, NodeId, Op};
use proptest::prelude::*;

/// A recipe for building a random (but always valid) CDFG: a sequence of
/// operation picks where each operand index refers to an already-created
/// value.
#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, usize, usize, usize)>,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (2usize..5, prop::collection::vec((0u8..6, 0usize..64, 0usize..64, 0usize..64), 1..40))
        .prop_map(|(num_inputs, steps)| Recipe { num_inputs, steps })
}

/// Builds a CDFG from a recipe.  Returns the graph and the list of created
/// value nodes in creation order.
fn build(recipe: &Recipe) -> (Cdfg, Vec<NodeId>) {
    let mut g = Cdfg::new("random");
    let mut values: Vec<NodeId> = Vec::new();
    for i in 0..recipe.num_inputs {
        values.push(g.add_input(format!("in{i}")));
    }
    for &(opcode, a, b, c) in &recipe.steps {
        let pick = |idx: usize| values[idx % values.len()];
        let node = match opcode {
            0 => g.add_op(Op::Add, &[pick(a), pick(b)]).unwrap(),
            1 => g.add_op(Op::Sub, &[pick(a), pick(b)]).unwrap(),
            2 => g.add_op(Op::Mul, &[pick(a), pick(b)]).unwrap(),
            3 => g.add_op(Op::Gt, &[pick(a), pick(b)]).unwrap(),
            4 => g.add_op(Op::Lt, &[pick(a), pick(b)]).unwrap(),
            _ => {
                let sel = g.add_op(Op::Gt, &[pick(a), pick(b)]).unwrap();
                g.add_mux(sel, pick(b), pick(c)).unwrap()
            }
        };
        values.push(node);
    }
    let last = *values.last().expect("at least the inputs exist");
    g.add_output("out", last).unwrap();
    (g, values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every randomly built CDFG validates and is acyclic.
    #[test]
    fn random_cdfgs_validate(recipe in recipe_strategy()) {
        let (g, _) = build(&recipe);
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.graph().is_acyclic());
    }

    /// The topological order places every operand before its consumer.
    #[test]
    fn topological_order_respects_data_edges(recipe in recipe_strategy()) {
        let (g, _) = build(&recipe);
        let order = g.topological_order();
        let pos: BTreeMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in g.node_ids() {
            for operand in g.operands(n) {
                prop_assert!(pos[&operand] < pos[&n], "operand scheduled after consumer");
            }
        }
    }

    /// The critical path never exceeds the number of functional nodes and is
    /// at least 1 when any functional node exists.
    #[test]
    fn critical_path_is_bounded(recipe in recipe_strategy()) {
        let (g, _) = build(&recipe);
        let cp = g.critical_path_length() as usize;
        let functional = g.functional_nodes().len();
        prop_assert!(cp <= functional.max(1));
        if functional > 0 {
            prop_assert!(cp >= 1);
        }
    }

    /// Transitive fanin and fanout are consistent: if `a` is in the fanin of
    /// `b` then `b` is in the fanout of `a`.
    #[test]
    fn fanin_fanout_duality(recipe in recipe_strategy()) {
        let (g, values) = build(&recipe);
        let b = *values.last().unwrap();
        for a in cone::transitive_fanin(&g, b) {
            let fanout = cone::transitive_fanout(&g, a);
            prop_assert!(fanout.contains(&b));
        }
    }

    /// Functional evaluation is deterministic and total for any input
    /// assignment.
    #[test]
    fn evaluation_is_deterministic(recipe in recipe_strategy(), seed in 0i64..1000) {
        let (g, _) = build(&recipe);
        let mut inputs = BTreeMap::new();
        for (i, _) in g.inputs().iter().enumerate() {
            inputs.insert(format!("in{i}"), seed.wrapping_mul(i as i64 + 1) % 256);
        }
        let out1 = g.evaluate(&inputs);
        let out2 = g.evaluate(&inputs);
        prop_assert_eq!(out1, out2);
    }

    /// Operation counts sum to the number of functional nodes.
    #[test]
    fn op_counts_sum_to_functional_nodes(recipe in recipe_strategy()) {
        let (g, _) = build(&recipe);
        prop_assert_eq!(g.op_counts().total(), g.functional_nodes().len());
    }
}
