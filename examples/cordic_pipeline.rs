//! Pipelining as a power-management enabler (Section IV-B) on a CORDIC
//! rotator.
//!
//! In a CORDIC iteration the direction comparison naturally precedes the
//! conditional add/subtract pairs, so even at the critical-path throughput
//! most multiplexors are already manageable; the example shows that adding
//! pipeline stages preserves those savings while the throughput constraint
//! stays fixed, at the cost of latency and pipeline registers.  (For designs
//! whose conditions sit on the critical path — e.g. `dealer` — the extra
//! stages also unlock additional managed multiplexors; see the
//! `ablation_pipeline` binary.)
//!
//! Run with `cargo run -p experiments --example cordic_pipeline`.

use std::error::Error;

use circuits::cordic_with_iterations;
use pmsched::pipeline::power_manage_pipelined;
use pmsched::PowerManagementOptions;

fn main() -> Result<(), Box<dyn Error>> {
    // A 6-iteration CORDIC keeps the example fast; the full benchmark uses
    // 16 iterations (see `circuits::cordic`).
    let cdfg = cordic_with_iterations(6);
    let critical_path = cdfg.critical_path_length();
    println!("cordic (6 iterations): {}", cdfg.op_counts());
    println!("critical path / throughput constraint: {critical_path} control steps\n");

    println!(
        "{:<7} {:>15} {:>9} {:>12} {:>15}",
        "stages", "steps per sample", "PM muxes", "savings (%)", "extra registers"
    );
    let options = PowerManagementOptions::with_latency(critical_path);
    for stages in 1..=3u32 {
        let report = power_manage_pipelined(&cdfg, &options, stages)?;
        println!(
            "{:<7} {:>15} {:>9} {:>12.2} {:>15}",
            stages,
            report.effective_latency,
            report.result.managed_mux_count(),
            report.reduction_percent(),
            report.extra_registers
        );
    }

    println!(
        "\nThe price of pipelining is latency ({}x the sample period) and the\n\
         pipeline registers listed above — exactly the trade-off Section IV-B\n\
         of the paper describes.",
        3
    );
    Ok(())
}
