//! Power management on the `gcd` benchmark across control-step budgets.
//!
//! Shows how the available slack (control steps beyond the critical path)
//! controls how many multiplexors can be power managed and how much datapath
//! power is saved — the trend behind Table II of the paper.  Also runs the
//! gate-level comparison (Table III method) for the budget the paper used.
//!
//! Run with `cargo run -p experiments --example gcd_power`.

use std::error::Error;

use circuits::gcd;
use pmsched::{power_manage, PowerManagementOptions, SelectProbabilities};
use power::estimate::{gate_level_comparison, GateLevelOptions};

fn main() -> Result<(), Box<dyn Error>> {
    let cdfg = gcd();
    println!("gcd: {}", cdfg.op_counts());
    println!("critical path: {} control steps\n", cdfg.critical_path_length());

    println!("{:<6} {:>9} {:>10} {:>12}", "steps", "PM muxes", "gated ops", "savings (%)");
    for steps in cdfg.critical_path_length()..=cdfg.critical_path_length() + 3 {
        let result = power_manage(&cdfg, &PowerManagementOptions::with_latency(steps))?;
        let activation = result.activation(&SelectProbabilities::fair());
        println!(
            "{:<6} {:>9} {:>10} {:>12.2}",
            steps,
            result.managed_mux_count(),
            activation.gated_nodes().len(),
            result.savings().reduction_percent
        );
    }

    println!("\ngate-level comparison at 7 control steps (Table III method):");
    let report = gate_level_comparison(&cdfg, &GateLevelOptions::new(7).samples(1000))?;
    println!("{report}");

    // Skewed branch probabilities: if the inputs are rarely equal (as with
    // real data), the eq-driven multiplexors gate almost nothing while the
    // gt-driven ones still save power.
    let result = power_manage(&cdfg, &PowerManagementOptions::with_latency(7))?;
    let mut skewed = SelectProbabilities::fair();
    for mm in result.managed_muxes() {
        // Assume the "greater" outcome is common and the "equal" outcome is
        // rare; mux nodes selected by eq get probability 0.05.
        if result.cdfg().node(mm.select_driver).map(|d| d.op == cdfg::Op::Eq).unwrap_or(false) {
            skewed.set(mm.mux, 0.05);
        }
    }
    let savings = result.savings_with(&skewed, &pmsched::OpWeights::paper_power());
    println!(
        "\nwith skewed branch probabilities (equality rare): {:.2}% datapath reduction",
        savings.reduction_percent
    );
    Ok(())
}
