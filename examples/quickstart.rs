//! Quickstart: the paper's |a - b| example, end to end.
//!
//! Builds the CDFG from Silage-like source, runs the power-management
//! scheduling algorithm with three control steps, generates the controller
//! and VHDL, and simulates a few samples to show one subtraction being shut
//! down per sample.
//!
//! Run with `cargo run -p experiments --example quickstart`.

use std::collections::BTreeMap;
use std::error::Error;

use pmsched::{power_manage, PowerManagementOptions};
use rtl::{Controller, Simulator};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Frontend: Silage-like source to CDFG.
    let source = circuits::abs_diff_silage_source();
    let cdfg = silage::compile(source)?;
    println!("design `{}`: {}", cdfg.name(), cdfg.op_counts());
    println!("critical path: {} control steps\n", cdfg.critical_path_length());

    // 2. Power-management-aware scheduling with three control steps.
    let result = power_manage(&cdfg, &PowerManagementOptions::with_latency(3))?;
    println!("power-managed schedule ({} steps):", result.latency());
    print!("{}", result.schedule().render(result.cdfg()));
    println!(
        "managed multiplexors: {}, estimated datapath power reduction: {:.1}%\n",
        result.managed_mux_count(),
        result.savings().reduction_percent
    );

    // 3. Controller and VHDL generation (step 12 of the paper's algorithm).
    let controller = Controller::generate(&result);
    println!("{controller}");
    let vhdl = rtl::vhdl::emit(&result, &controller);
    println!("generated VHDL: {} lines (entity `{}`)\n", vhdl.lines().count(), cdfg.name());

    // 4. Cycle-accurate simulation: one subtraction is gated every sample.
    let mut sim = Simulator::new(result.cdfg(), result.schedule(), &controller)?;
    for (a, b) in [(9i64, 4i64), (4, 9), (200, 13)] {
        let mut sample = BTreeMap::new();
        sample.insert("a".to_owned(), a);
        sample.insert("b".to_owned(), b);
        let run = sim.run_sample(&sample)?;
        println!(
            "|{a} - {b}| = {}  (executed {} ops, shut down {})",
            run.outputs["abs"],
            run.executed.len(),
            run.gated.len()
        );
    }
    Ok(())
}
