//! Compiling and power-managing a user-written Silage-like program.
//!
//! The program below is a small clip-and-scale kernel with two nested
//! conditionals.  The example compiles it, explores the latency/savings
//! trade-off, exports the CDFG as Graphviz DOT and prints the generated
//! VHDL skeleton for the best configuration.
//!
//! Run with `cargo run -p experiments --example custom_silage`.

use std::error::Error;

use pmsched::{power_manage, PowerManagementOptions};
use rtl::Controller;

const PROGRAM: &str = r#"
# Clip-and-scale: saturate the input against a threshold, then either
# amplify or attenuate depending on a mode comparison.
func clip_scale(x: num[8], threshold: num[8], gain: num[8], mode: num[8]) -> (y: num[8]) {
    over    = x > threshold;
    clipped = if over then threshold else x;
    loud    = mode > gain;
    amplified  = clipped * gain;
    attenuated = clipped - gain;
    y = if loud then amplified else attenuated;
}
"#;

fn main() -> Result<(), Box<dyn Error>> {
    let cdfg = silage::compile(PROGRAM)?;
    println!("compiled `{}`: {}", cdfg.name(), cdfg.op_counts());
    println!("critical path: {} control steps", cdfg.critical_path_length());

    println!("\nlatency sweep:");
    println!("{:<7} {:>9} {:>12}", "steps", "PM muxes", "savings (%)");
    let mut best_steps = cdfg.critical_path_length();
    let mut best_savings = -1.0f64;
    for steps in cdfg.critical_path_length()..=cdfg.critical_path_length() + 3 {
        let result = power_manage(&cdfg, &PowerManagementOptions::with_latency(steps))?;
        let savings = result.savings().reduction_percent;
        println!("{:<7} {:>9} {:>12.2}", steps, result.managed_mux_count(), savings);
        if savings > best_savings {
            best_savings = savings;
            best_steps = steps;
        }
    }

    let result = power_manage(&cdfg, &PowerManagementOptions::with_latency(best_steps))?;
    println!("\nbest configuration: {best_steps} control steps ({best_savings:.1}% reduction)");
    println!("\nGraphviz DOT of the constrained CDFG (control edges dashed):\n");
    println!("{}", cdfg::dot::to_dot(result.cdfg()));

    let controller = Controller::generate(&result);
    let vhdl = rtl::vhdl::emit(&result, &controller);
    println!("first lines of the generated VHDL:\n");
    for line in vhdl.lines().take(20) {
        println!("{line}");
    }
    println!("...");
    Ok(())
}
